//! # hni-faults — the deterministic fault-injection layer
//!
//! One vocabulary for everything that can go wrong on the path from
//! host memory at A to host memory at B, shared by every injection
//! point in the workspace:
//!
//! * the **link** (`hni_sim::Link`) consumes a [`FaultPlan`] directly —
//!   loss, bit corruption, duplication, bounded reordering, with i.i.d.
//!   or bursty Gilbert–Elliott processes;
//! * the **bus** (`hni_core::Bus`) consumes a [`BusFaultPlan`] —
//!   arbitration stalls and aborted-then-retried bursts;
//! * the **NIC ingress** (`hni_core::Nic::inject_cell_faulted`) runs
//!   raw cells through a [`FaultInjector`] before injection;
//! * the **receive pipeline** (`hni_core::rxsim::run_rx_faulted` and
//!   `e2esim::run_e2e_faulted`) perturbs the arrival schedule with a
//!   plan and reconciles every injected cell to exactly one drop or
//!   delivery reason.
//!
//! The primitive types live in `hni_sim::faults` (so the bottom-layer
//! link can use them); this crate re-exports them and adds the policy
//! surface: named [`scenarios`] with literature-grounded parameters,
//! and the [`chaos`] generator that turns a bare seed into a random
//! but *bounded* plan — the fuel for the chaos invariant tests.
//!
//! Everything here is deterministic per seed. No wall clock, no OS
//! entropy, no global state.

pub use hni_sim::faults::{
    BusFaultPlan, DelayLine, DelayModel, FaultInjector, FaultPlan, FaultProcess, GeParams, UnitFate,
};

/// Named fault scenarios with parameters grounded in the ATM
/// literature, so experiments and examples agree on what "a congested
/// switch" or "a dirty fibre" means.
pub mod scenarios {
    use super::*;

    /// Nothing goes wrong. Draws zero randomness — the control arm.
    pub fn clean() -> FaultPlan {
        FaultPlan::NONE
    }

    /// A congested switch on the path: i.i.d. cell loss at rate `p`,
    /// nothing else. This is the degenerate one-state plan the R-F5
    /// goodput experiment sweeps.
    pub fn switch_loss(p: f64) -> FaultPlan {
        FaultPlan::loss(p)
    }

    /// A marginal optical section: i.i.d. bit errors at `ber`, no cell
    /// loss (HEC and AAL CRCs do the discarding downstream).
    pub fn dirty_fibre(ber: f64) -> FaultPlan {
        FaultPlan::ber(ber)
    }

    /// Bursty congestion: a Gilbert–Elliott loss chain whose Bad state
    /// models a switch buffer overflowing for `burst_cells` cells on
    /// average, entered rarely enough that the long-run loss rate is
    /// roughly `mean_loss`.
    pub fn bursty_congestion(mean_loss: f64, burst_cells: f64) -> FaultPlan {
        assert!(mean_loss > 0.0 && mean_loss < 1.0);
        assert!(burst_cells >= 1.0);
        let bad = 0.9; // near-total loss while the buffer is full
        let p_bad_to_good = 1.0 / burst_cells;
        // Stationary Bad occupancy π_b satisfies π_b·bad = mean_loss.
        let pi_b = (mean_loss / bad).min(0.5);
        let p_good_to_bad = (pi_b * p_bad_to_good / (1.0 - pi_b)).min(1.0);
        FaultPlan::bursty_loss(GeParams {
            p_good_to_bad,
            p_bad_to_good,
            good: 0.0,
            bad,
        })
    }

    /// A misbehaving multipath segment: duplication and bounded
    /// reordering but no loss — the pathologies reassembly must shrug
    /// off without ever delivering a corrupt frame.
    pub fn jittery_path(dup: f64, reorder: f64, span: u32) -> FaultPlan {
        FaultPlan::NONE
            .with_duplication(dup)
            .with_reorder(reorder, span)
    }

    /// A bus under contention from an unmodelled third agent:
    /// occasional arbitration stalls and rare aborted bursts.
    pub fn contended_bus(seed: u64) -> BusFaultPlan {
        BusFaultPlan {
            stall_probability: 0.05,
            stall_cycles: 8,
            retry_probability: 0.01,
            seed,
        }
    }

    /// A campus/LAN path: ~5 µs one way (a kilometre of fibre plus a
    /// switch), no jitter. Feedback is essentially immediate at cell
    /// timescales, so window dynamics barely bite.
    pub const fn lan_path() -> DelayModel {
        DelayModel::fixed(hni_sim::Duration::from_us(5))
    }

    /// A continental WAN path: 25 ms one way (≈ 50 ms RTT) with up to
    /// 500 µs of seeded jitter from queueing along the way.
    pub const fn wan_path() -> DelayModel {
        DelayModel::jittered(
            hni_sim::Duration::from_ms(25),
            hni_sim::Duration::from_us(500),
        )
    }

    /// A geostationary satellite hop, after Goyal/Jain's satellite-ATM
    /// scenario: 280 ms one way (≥ 560 ms RTT, comfortably past the
    /// 500 ms the literature treats as the long-delay regime) with up
    /// to 1 ms of seeded jitter. Timeout and backoff policy, not line
    /// rate, dominates goodput here.
    pub const fn satellite_path() -> DelayModel {
        DelayModel::jittered(
            hni_sim::Duration::from_ms(280),
            hni_sim::Duration::from_ms(1),
        )
    }
}

/// Seed → random but bounded fault plan, for chaos testing.
pub mod chaos {
    use super::*;
    use hni_sim::Rng;

    /// Generate a random fault plan from a seed. Parameters are drawn
    /// from ranges wide enough to exercise every mechanism (including
    /// its absence) but bounded so runs terminate and invariants are
    /// checkable: loss ≤ 30%, BER ≤ 1e-3, duplication ≤ 10%,
    /// reordering ≤ 20% over spans ≤ 8.
    ///
    /// The same seed always yields the same plan; nearby seeds yield
    /// unrelated plans (the RNG seeds through SplitMix64).
    pub fn random_plan(seed: u64) -> FaultPlan {
        let mut rng = Rng::new(seed ^ 0xC0FF_EE00_D15E_A5E5);
        let loss = random_process(&mut rng, 0.3);
        let errors = random_process(&mut rng, 1e-3);
        let duplication = if rng.chance(0.5) {
            0.1 * rng.f64()
        } else {
            0.0
        };
        let (reorder_probability, reorder_span) = if rng.chance(0.5) {
            (0.2 * rng.f64(), 1 + rng.below(8) as u32)
        } else {
            (0.0, 0)
        };
        let plan = FaultPlan {
            loss,
            errors,
            duplication,
            reorder_probability,
            reorder_span,
        };
        plan.validate();
        plan
    }

    /// Random bus-fault plan for the same chaos campaigns.
    pub fn random_bus_plan(seed: u64) -> BusFaultPlan {
        let mut rng = Rng::new(seed ^ 0xB005_FAA7_0000_0001);
        let plan = if rng.chance(0.5) {
            BusFaultPlan {
                stall_probability: 0.2 * rng.f64(),
                stall_cycles: 1 + rng.below(16) as u32,
                retry_probability: 0.05 * rng.f64(),
                seed: rng.next_u64(),
            }
        } else {
            BusFaultPlan::NONE
        };
        plan.validate();
        plan
    }

    fn random_process(rng: &mut Rng, max_rate: f64) -> FaultProcess {
        match rng.below(3) {
            0 => FaultProcess::Off,
            1 => FaultProcess::Iid(max_rate * rng.f64()),
            _ => {
                let bad = max_rate * (0.5 + 0.5 * rng.f64());
                FaultProcess::Ge(GeParams {
                    p_good_to_bad: 0.05 * rng.f64(),
                    p_bad_to_good: 0.05 + 0.45 * rng.f64(),
                    good: 0.0,
                    bad,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_valid_plans() {
        for plan in [
            scenarios::clean(),
            scenarios::switch_loss(0.01),
            scenarios::dirty_fibre(1e-6),
            scenarios::bursty_congestion(0.01, 12.0),
            scenarios::jittery_path(0.02, 0.05, 4),
        ] {
            plan.validate();
        }
        scenarios::contended_bus(7).validate();
        assert!(scenarios::clean().is_none());
        assert!(!scenarios::bursty_congestion(0.01, 12.0).is_none());
    }

    #[test]
    fn delay_presets_are_ordered_and_satellite_is_long() {
        let lan = scenarios::lan_path();
        let wan = scenarios::wan_path();
        let sat = scenarios::satellite_path();
        assert!(lan.is_fixed());
        assert!(lan.base < wan.base && wan.base < sat.base);
        // The satellite preset must put the round trip past the 500 ms
        // long-delay threshold even with zero jitter drawn.
        assert!(sat.base.times(2) >= hni_sim::Duration::from_ms(500));
    }

    #[test]
    fn bursty_congestion_hits_requested_mean_loss() {
        let plan = scenarios::bursty_congestion(0.02, 16.0);
        let mut inj = FaultInjector::seeded(plan, 3);
        let n = 400_000;
        let lost = (0..n).filter(|_| inj.fate(424).lost).count();
        let rate = lost as f64 / n as f64;
        assert!(
            (rate - 0.02).abs() / 0.02 < 0.25,
            "long-run loss {rate} far from 0.02"
        );
    }

    #[test]
    fn chaos_plans_are_deterministic_and_valid() {
        for seed in 0..500u64 {
            let a = chaos::random_plan(seed);
            let b = chaos::random_plan(seed);
            assert_eq!(a, b, "seed {seed} not deterministic");
            a.validate(); // would panic on an out-of-range parameter
            let bus = chaos::random_bus_plan(seed);
            assert_eq!(bus, chaos::random_bus_plan(seed));
            bus.validate();
        }
        // Different seeds do explore the space.
        assert_ne!(chaos::random_plan(1), chaos::random_plan(2));
    }

    #[test]
    fn chaos_space_covers_every_mechanism() {
        let mut saw = (false, false, false, false, false); // loss, ber, dup, reorder, none
        for seed in 0..200u64 {
            let p = chaos::random_plan(seed);
            saw.0 |= !p.loss.is_off();
            saw.1 |= !p.errors.is_off();
            saw.2 |= p.duplication > 0.0;
            saw.3 |= p.reorder_probability > 0.0 && p.reorder_span > 0;
            saw.4 |= p.is_none();
        }
        assert!(
            saw.0 && saw.1 && saw.2 && saw.3,
            "mechanism never drawn: {saw:?}"
        );
        assert!(saw.4, "the empty plan must be reachable too");
    }
}
