//! The output-queued switch fabric.

use hni_atm::{Cell, HeaderRepr, VcId};
use hni_sim::{OccupancyTracker, Time};
use hni_telemetry::{NullTracer, Stage, TraceEvent, Tracer};
use std::collections::{HashMap, VecDeque};

/// Switch parameters.
#[derive(Clone, Copy, Debug)]
pub struct SwitchConfig {
    /// Number of ports (each is both an input and an output).
    pub ports: usize,
    /// Cells each output queue can hold.
    pub output_queue_cells: usize,
    /// Queue depth above which CLP=1 cells are discarded (space
    /// priority). Set equal to `output_queue_cells` to disable.
    pub clp_threshold: usize,
    /// Queue depth at or above which departing user-data cells get the
    /// EFCI (explicit forward congestion indication) bit set, warning
    /// downstream receivers. Set to `output_queue_cells` to disable.
    pub efci_threshold: usize,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            ports: 4,
            output_queue_cells: 64,
            clp_threshold: 48,
            efci_threshold: 32,
        }
    }
}

/// One routing-table entry: where a connection goes and what its label
/// becomes on the way out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouteEntry {
    /// Output port index.
    pub out_port: usize,
    /// Outgoing VPI/VCI (labels are link-local in ATM).
    pub out_vc: VcId,
}

/// Per-port statistics.
#[derive(Clone, Debug, Default)]
pub struct PortStats {
    /// Cells offered to this output queue.
    pub offered: u64,
    /// Cells transmitted from this output.
    pub carried: u64,
    /// Cells dropped: queue completely full.
    pub dropped_full: u64,
    /// Cells dropped: CLP=1 above the space-priority threshold.
    pub dropped_clp: u64,
}

/// The switch.
pub struct Switch {
    cfg: SwitchConfig,
    routes: HashMap<(usize, VcId), RouteEntry>,
    queues: Vec<VecDeque<Cell>>,
    occupancy: Vec<OccupancyTracker>,
    stats: Vec<PortStats>,
    unroutable: u64,
    efci_marked: u64,
}

impl Switch {
    /// An empty switch per `cfg`.
    pub fn new(cfg: SwitchConfig) -> Self {
        assert!(cfg.ports > 0 && cfg.output_queue_cells > 0);
        assert!(cfg.clp_threshold <= cfg.output_queue_cells);
        Switch {
            routes: HashMap::new(),
            queues: (0..cfg.ports).map(|_| VecDeque::new()).collect(),
            occupancy: (0..cfg.ports).map(|_| OccupancyTracker::new()).collect(),
            stats: vec![PortStats::default(); cfg.ports],
            unroutable: 0,
            efci_marked: 0,
            cfg,
        }
    }

    /// Configuration in force.
    pub fn config(&self) -> &SwitchConfig {
        &self.cfg
    }

    /// Install a route: cells of `in_vc` arriving on `in_port` leave on
    /// `route.out_port` relabelled as `route.out_vc`.
    ///
    /// # Panics
    /// If either port index is out of range.
    pub fn add_route(&mut self, in_port: usize, in_vc: VcId, route: RouteEntry) {
        assert!(in_port < self.cfg.ports && route.out_port < self.cfg.ports);
        self.routes.insert((in_port, in_vc), route);
    }

    /// Remove a route; returns whether it existed.
    pub fn remove_route(&mut self, in_port: usize, in_vc: VcId) -> bool {
        self.routes.remove(&(in_port, in_vc)).is_some()
    }

    /// Offer one cell arriving on `in_port` at time `now`.
    ///
    /// Routing, label translation and the queue/discard decision happen
    /// immediately (output-queued fabric). Returns `true` if the cell
    /// was queued, `false` if dropped (any cause).
    pub fn offer(&mut self, in_port: usize, cell: &Cell, now: Time) -> bool {
        self.offer_traced(in_port, cell, now, &mut NullTracer)
    }

    /// [`Switch::offer`] with a tracer recording the enqueue (arg =
    /// queue depth after, vc = translated label).
    pub fn offer_traced(
        &mut self,
        in_port: usize,
        cell: &Cell,
        now: Time,
        tracer: &mut dyn Tracer,
    ) -> bool {
        assert!(in_port < self.cfg.ports);
        let Ok(header) = cell.header() else {
            self.unroutable += 1;
            return false;
        };
        let Some(&route) = self.routes.get(&(in_port, header.vc())) else {
            self.unroutable += 1;
            return false;
        };
        let st = &mut self.stats[route.out_port];
        st.offered += 1;
        let q = &mut self.queues[route.out_port];
        if q.len() >= self.cfg.output_queue_cells {
            st.dropped_full += 1;
            return false;
        }
        if header.clp && q.len() >= self.cfg.clp_threshold {
            st.dropped_clp += 1;
            return false;
        }
        // Label translation: rewrite the header, keep PTI/CLP/payload.
        let mut out = cell.clone();
        let new_header = HeaderRepr {
            vpi: route.out_vc.vpi,
            vci: route.out_vc.vci,
            ..header
        };
        out.set_header(&new_header)
            .expect("translated header must be encodable");
        q.push_back(out);
        self.occupancy[route.out_port].set(now, q.len() as u64);
        if tracer.enabled() {
            tracer.record(
                TraceEvent::instant(now, Stage::SwitchEnqueue)
                    .vc(route.out_vc.cam_key())
                    .arg(self.queues[route.out_port].len() as u64),
            );
        }
        true
    }

    /// Drain one cell from `out_port` (call once per output cell slot).
    ///
    /// If the queue it leaves is at or above the EFCI threshold, a
    /// user-data cell departs with its congestion-experienced bit set —
    /// the forward warning downstream rate control acts on.
    pub fn pull(&mut self, out_port: usize, now: Time) -> Option<Cell> {
        self.pull_traced(out_port, now, &mut NullTracer)
    }

    /// [`Switch::pull`] with a tracer recording the dequeue (arg =
    /// queue depth after).
    pub fn pull_traced(
        &mut self,
        out_port: usize,
        now: Time,
        tracer: &mut dyn Tracer,
    ) -> Option<Cell> {
        assert!(out_port < self.cfg.ports);
        let depth_before = self.queues[out_port].len();
        let mut cell = self.queues[out_port].pop_front()?;
        if depth_before >= self.cfg.efci_threshold {
            if let Ok(header) = cell.header() {
                if let hni_atm::Pti::UserData {
                    congestion: false,
                    last,
                } = header.pti
                {
                    let marked = HeaderRepr {
                        pti: hni_atm::Pti::UserData {
                            congestion: true,
                            last,
                        },
                        ..header
                    };
                    cell.set_header(&marked).expect("marked header encodable");
                    self.efci_marked += 1;
                }
            }
        }
        self.stats[out_port].carried += 1;
        self.occupancy[out_port].set(now, self.queues[out_port].len() as u64);
        if tracer.enabled() {
            let vc = cell
                .header()
                .map(|h| h.vc().cam_key())
                .unwrap_or(hni_telemetry::NO_ID);
            tracer.record(
                TraceEvent::instant(now, Stage::SwitchDequeue)
                    .vc(vc)
                    .arg(self.queues[out_port].len() as u64),
            );
        }
        Some(cell)
    }

    /// Cells that departed with a freshly set EFCI bit.
    pub fn efci_marked(&self) -> u64 {
        self.efci_marked
    }

    /// Current depth of an output queue.
    pub fn queue_len(&self, out_port: usize) -> usize {
        self.queues[out_port].len()
    }

    /// Statistics for one output port.
    pub fn port_stats(&self, out_port: usize) -> &PortStats {
        &self.stats[out_port]
    }

    /// Peak occupancy of one output queue.
    pub fn peak_queue(&self, out_port: usize) -> u64 {
        self.occupancy[out_port].peak()
    }

    /// Time-weighted mean occupancy of one output queue over `[0, end]`.
    pub fn mean_queue(&self, out_port: usize, end: Time) -> f64 {
        self.occupancy[out_port].mean(end)
    }

    /// Cells that matched no route (or had undecodable headers).
    pub fn unroutable(&self) -> u64 {
        self.unroutable
    }

    /// Overall loss ratio across all ports (dropped / offered).
    pub fn loss_ratio(&self) -> f64 {
        let offered: u64 = self.stats.iter().map(|s| s.offered).sum();
        let dropped: u64 = self
            .stats
            .iter()
            .map(|s| s.dropped_full + s.dropped_clp)
            .sum();
        if offered == 0 {
            0.0
        } else {
            dropped as f64 / offered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hni_atm::PAYLOAD_SIZE;

    fn cell(vc: VcId, clp: bool) -> Cell {
        let h = HeaderRepr {
            clp,
            ..HeaderRepr::data(vc, false)
        };
        Cell::new(&h, &[0x33; PAYLOAD_SIZE]).unwrap()
    }

    fn basic_switch() -> Switch {
        let mut sw = Switch::new(SwitchConfig {
            ports: 4,
            output_queue_cells: 8,
            clp_threshold: 4,
            efci_threshold: 8,
        });
        sw.add_route(
            0,
            VcId::new(0, 100),
            RouteEntry {
                out_port: 2,
                out_vc: VcId::new(7, 700),
            },
        );
        sw
    }

    #[test]
    fn routes_and_translates_labels() {
        let mut sw = basic_switch();
        assert!(sw.offer(0, &cell(VcId::new(0, 100), false), Time::ZERO));
        let out = sw.pull(2, Time::ZERO).expect("queued cell");
        let h = out.header().unwrap();
        assert_eq!(h.vc(), VcId::new(7, 700), "label must be rewritten");
        assert_eq!(out.payload(), &[0x33; PAYLOAD_SIZE]);
        assert_eq!(sw.port_stats(2).carried, 1);
    }

    #[test]
    fn unroutable_cells_counted() {
        let mut sw = basic_switch();
        assert!(!sw.offer(0, &cell(VcId::new(0, 999), false), Time::ZERO));
        assert!(
            !sw.offer(1, &cell(VcId::new(0, 100), false), Time::ZERO),
            "route is per input port"
        );
        assert_eq!(sw.unroutable(), 2);
    }

    #[test]
    fn queue_overflow_drops() {
        let mut sw = basic_switch();
        let c = cell(VcId::new(0, 100), false);
        for _ in 0..8 {
            assert!(sw.offer(0, &c, Time::ZERO));
        }
        assert!(!sw.offer(0, &c, Time::ZERO), "ninth cell must drop");
        assert_eq!(sw.port_stats(2).dropped_full, 1);
        assert_eq!(sw.queue_len(2), 8);
    }

    #[test]
    fn clp_space_priority() {
        let mut sw = basic_switch();
        let high = cell(VcId::new(0, 100), false);
        let low = cell(VcId::new(0, 100), true);
        // Fill to the CLP threshold (4).
        for _ in 0..4 {
            assert!(sw.offer(0, &high, Time::ZERO));
        }
        // Low-priority cells now bounce; high-priority still enter.
        assert!(!sw.offer(0, &low, Time::ZERO));
        assert!(sw.offer(0, &high, Time::ZERO));
        assert_eq!(sw.port_stats(2).dropped_clp, 1);
        assert_eq!(sw.port_stats(2).dropped_full, 0);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut sw = basic_switch();
        for i in 0..5u8 {
            let mut c = cell(VcId::new(0, 100), false);
            c.payload_mut()[0] = i;
            sw.offer(0, &c, Time::ZERO);
        }
        for i in 0..5u8 {
            assert_eq!(sw.pull(2, Time::ZERO).unwrap().payload()[0], i);
        }
        assert!(sw.pull(2, Time::ZERO).is_none());
    }

    #[test]
    fn two_inputs_one_output_interleave() {
        let mut sw = basic_switch();
        sw.add_route(
            1,
            VcId::new(0, 200),
            RouteEntry {
                out_port: 2,
                out_vc: VcId::new(7, 701),
            },
        );
        sw.offer(0, &cell(VcId::new(0, 100), false), Time::ZERO);
        sw.offer(1, &cell(VcId::new(0, 200), false), Time::ZERO);
        let a = sw.pull(2, Time::ZERO).unwrap().header().unwrap().vci;
        let b = sw.pull(2, Time::ZERO).unwrap().header().unwrap().vci;
        assert_eq!((a, b), (700, 701));
    }

    #[test]
    fn occupancy_statistics() {
        let mut sw = basic_switch();
        let c = cell(VcId::new(0, 100), false);
        sw.offer(0, &c, Time::ZERO);
        sw.offer(0, &c, Time::ZERO);
        sw.pull(2, Time::from_us(1));
        assert_eq!(sw.peak_queue(2), 2);
        let mean = sw.mean_queue(2, Time::from_us(2));
        assert!((mean - 1.5).abs() < 1e-9);
    }

    #[test]
    fn loss_ratio_accounting() {
        let mut sw = Switch::new(SwitchConfig {
            ports: 2,
            output_queue_cells: 2,
            clp_threshold: 2,
            efci_threshold: 2,
        });
        sw.add_route(
            0,
            VcId::new(0, 32),
            RouteEntry {
                out_port: 1,
                out_vc: VcId::new(0, 32),
            },
        );
        let c = cell(VcId::new(0, 32), false);
        for _ in 0..4 {
            sw.offer(0, &c, Time::ZERO);
        }
        // 4 offered, 2 queued, 2 dropped.
        assert!((sw.loss_ratio() - 0.5).abs() < 1e-12);
    }
}

#[cfg(test)]
mod efci_tests {
    use super::*;
    use hni_atm::{Pti, PAYLOAD_SIZE};

    fn data_cell(vc: VcId) -> Cell {
        Cell::new(&HeaderRepr::data(vc, false), &[0x11; PAYLOAD_SIZE]).unwrap()
    }

    #[test]
    fn efci_set_above_threshold_only() {
        let mut sw = Switch::new(SwitchConfig {
            ports: 2,
            output_queue_cells: 16,
            clp_threshold: 16,
            efci_threshold: 4,
        });
        let vc = VcId::new(0, 32);
        sw.add_route(
            0,
            vc,
            RouteEntry {
                out_port: 1,
                out_vc: vc,
            },
        );
        for _ in 0..8 {
            sw.offer(0, &data_cell(vc), Time::ZERO);
        }
        // Queue starts at 8 ≥ 4: the first 5 pulls (depth 8,7,6,5,4) are
        // marked, the remaining 3 (depth 3,2,1) are clean.
        let mut marked = 0;
        while let Some(c) = sw.pull(1, Time::ZERO) {
            if let Pti::UserData {
                congestion: true, ..
            } = c.header().unwrap().pti
            {
                marked += 1;
            }
        }
        assert_eq!(marked, 5);
        assert_eq!(sw.efci_marked(), 5);
    }

    #[test]
    fn efci_disabled_at_queue_capacity_threshold() {
        let mut sw = Switch::new(SwitchConfig {
            ports: 2,
            output_queue_cells: 8,
            clp_threshold: 8,
            efci_threshold: 8,
        });
        let vc = VcId::new(0, 33);
        sw.add_route(
            0,
            vc,
            RouteEntry {
                out_port: 1,
                out_vc: vc,
            },
        );
        for _ in 0..8 {
            sw.offer(0, &data_cell(vc), Time::ZERO);
        }
        // Depth 8 == threshold 8 → first pull still marks. For a true
        // "disable", the threshold must exceed any reachable depth; with
        // capacity 8, depth can reach exactly 8, so one mark occurs.
        let mut marked = 0;
        while let Some(c) = sw.pull(1, Time::ZERO) {
            if let Pti::UserData {
                congestion: true, ..
            } = c.header().unwrap().pti
            {
                marked += 1;
            }
        }
        assert_eq!(marked, 1);
    }

    #[test]
    fn already_marked_cells_not_double_counted() {
        let mut sw = Switch::new(SwitchConfig {
            ports: 2,
            output_queue_cells: 8,
            clp_threshold: 8,
            efci_threshold: 1,
        });
        let vc = VcId::new(0, 34);
        sw.add_route(
            0,
            vc,
            RouteEntry {
                out_port: 1,
                out_vc: vc,
            },
        );
        let h = HeaderRepr {
            pti: Pti::UserData {
                congestion: true,
                last: false,
            },
            ..HeaderRepr::data(vc, false)
        };
        let pre_marked = Cell::new(&h, &[0u8; PAYLOAD_SIZE]).unwrap();
        sw.offer(0, &pre_marked, Time::ZERO);
        let out = sw.pull(1, Time::ZERO).unwrap();
        assert!(matches!(
            out.header().unwrap().pti,
            Pti::UserData {
                congestion: true,
                ..
            }
        ));
        assert_eq!(sw.efci_marked(), 0, "pre-marked cells are not re-counted");
    }
}
