//! Line cards: SONET termination around the fabric.
//!
//! The fabric ([`crate::fabric::Switch`]) moves *cells*; a deployable
//! switch node terminates SONET on every port. A [`LineCard`] pairs a
//! transmission-convergence receiver (frame alignment → delineation →
//! descrambling → idle removal) with a TC transmitter (idle fill,
//! scrambling, framing), and [`SwitchNode`] straps one onto each fabric
//! port — so two host interfaces can be connected *through a real switch
//! hop* at the frame level, label translation and all.

use crate::fabric::{Switch, SwitchConfig};
use hni_sim::Time;
use hni_sonet::{LineRate, TcReceiver, TcTransmitter};
use hni_telemetry::{Activity, Component, HdrHist, NullProfiler, Profiler};

/// One port's SONET termination.
pub struct LineCard {
    rx: TcReceiver,
    tx: TcTransmitter,
}

impl LineCard {
    /// A line card at `rate`.
    pub fn new(rate: LineRate) -> Self {
        LineCard {
            rx: TcReceiver::new(rate),
            tx: TcTransmitter::new(rate),
        }
    }

    /// Receive-side TC statistics.
    pub fn receiver(&self) -> &TcReceiver {
        &self.rx
    }
    /// Transmit-side TC statistics.
    pub fn transmitter(&self) -> &TcTransmitter {
        &self.tx
    }
}

/// A complete switch node: fabric + one line card per port.
///
/// Drive it like the optical plant would: feed received frames into
/// [`SwitchNode::receive_frame`], and call [`SwitchNode::frame_tick`]
/// every 125 µs per port to obtain the outgoing frame. Cell-slot
/// pacing between the fabric and each output line is handled inside
/// `frame_tick` (one frame's worth of output slots per tick).
pub struct SwitchNode {
    fabric: Switch,
    cards: Vec<LineCard>,
    rate: LineRate,
    // Always-on: per-tick output backlog (cells) across all ports —
    // the queue-depth distribution congestion work is judged by.
    backlog_hist: HdrHist,
}

impl SwitchNode {
    /// A node with `cfg.ports` line cards at `rate`.
    pub fn new(cfg: SwitchConfig, rate: LineRate) -> Self {
        let cards = (0..cfg.ports).map(|_| LineCard::new(rate)).collect();
        SwitchNode {
            fabric: Switch::new(cfg),
            cards,
            rate,
            backlog_hist: HdrHist::new(),
        }
    }

    /// The fabric (routing table, statistics).
    pub fn fabric(&mut self) -> &mut Switch {
        &mut self.fabric
    }
    /// A port's line card.
    pub fn card(&self, port: usize) -> &LineCard {
        &self.cards[port]
    }

    /// Feed one received SONET frame (or any chunk of line octets) into
    /// `port`. Recovered cells go straight into the fabric.
    pub fn receive_frame(&mut self, port: usize, octets: &[u8], now: Time) {
        let mut cells = Vec::new();
        self.cards[port].rx.push_bytes(octets, &mut cells);
        for cell in cells {
            let _ = self.fabric.offer(port, &cell, now);
        }
    }

    /// Produce `port`'s next outgoing 125 µs frame, draining the
    /// fabric's output queue at one cell per payload slot.
    pub fn frame_tick(&mut self, port: usize, now: Time) -> Vec<u8> {
        self.frame_tick_profiled(port, now, &mut NullProfiler)
    }

    /// [`SwitchNode::frame_tick`] with cycle accounting: each cell the
    /// tick drains from the fabric charges one output cell slot of
    /// `(switch, transfer)`, laid out sequentially from `now`, and the
    /// port's residual backlog is sampled as the `switch` gauge.
    pub fn frame_tick_profiled(
        &mut self,
        port: usize,
        now: Time,
        profiler: &mut dyn Profiler,
    ) -> Vec<u8> {
        // One frame carries ⌊payload/53⌋ whole cells plus a fractional
        // carry the TC layer tracks internally; drain enough cells to
        // keep the TC queue primed one frame ahead.
        let per_frame = self.rate.payload_octets_per_frame() / 53 + 1;
        let slot = self.rate.cell_slot_time();
        let mut drained = 0u64;
        for _ in 0..per_frame {
            if self.cards[port].tx.backlog_cells() > per_frame {
                break;
            }
            match self.fabric.pull(port, now) {
                Some(cell) => {
                    self.cards[port].tx.push_cell(&cell);
                    drained += 1;
                }
                None => break,
            }
        }
        // Always-on backlog distribution: one sample per tick, O(1),
        // no allocation; the profiler gauge below stays opt-in.
        self.backlog_hist.record(self.output_backlog(port) as u64);
        if profiler.enabled() {
            for i in 0..drained {
                profiler.charge(Component::Switch, Activity::Transfer, now + slot * i, slot);
            }
            profiler.gauge(Component::Switch, now, self.output_backlog(port) as u64);
        }
        self.cards[port].tx.pull_frame()
    }

    /// Cells a port's output (fabric queue + TC backlog) still holds.
    pub fn output_backlog(&self, port: usize) -> usize {
        self.fabric.queue_len(port) + self.cards[port].tx.backlog_cells()
    }

    /// Distribution of output backlogs sampled at every frame tick
    /// (all ports pooled): p50/p99 queue depth under load.
    pub fn backlog_hist(&self) -> &HdrHist {
        &self.backlog_hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::RouteEntry;
    use hni_atm::{Cell, HeaderRepr, VcId, PAYLOAD_SIZE};

    #[test]
    fn cells_cross_the_node_with_translated_labels() {
        let rate = LineRate::Oc3;
        let mut node = SwitchNode::new(
            SwitchConfig {
                ports: 2,
                output_queue_cells: 128,
                clp_threshold: 128,
                efci_threshold: 128,
            },
            rate,
        );
        node.fabric().add_route(
            0,
            VcId::new(0, 50),
            RouteEntry {
                out_port: 1,
                out_vc: VcId::new(3, 350),
            },
        );

        // A TC transmitter plays the role of the upstream host interface.
        let mut upstream = TcTransmitter::new(rate);
        // And a TC receiver the downstream one.
        let mut downstream = TcReceiver::new(rate);

        // Warm-up: sync the node's input card to the upstream signal and
        // the downstream receiver to the node's output.
        for _ in 0..14 {
            let f = upstream.pull_frame();
            node.receive_frame(0, &f, Time::ZERO);
            let out = node.frame_tick(1, Time::ZERO);
            let mut sink = Vec::new();
            downstream.push_bytes(&out, &mut sink);
            assert!(sink.is_empty());
        }
        assert!(node.card(0).receiver().delineator().is_synced());
        assert!(downstream.delineator().is_synced());

        // Send 40 cells through.
        for i in 0..40u8 {
            let cell = Cell::new(
                &HeaderRepr::data(VcId::new(0, 50), i % 2 == 0),
                &[i; PAYLOAD_SIZE],
            )
            .unwrap();
            upstream.push_cell(&cell);
        }
        let mut got = Vec::new();
        for _ in 0..6 {
            let f = upstream.pull_frame();
            node.receive_frame(0, &f, Time::ZERO);
            let out = node.frame_tick(1, Time::ZERO);
            downstream.push_bytes(&out, &mut got);
        }
        assert_eq!(got.len(), 40);
        for (i, cell) in got.iter().enumerate() {
            let h = cell.header().unwrap();
            assert_eq!(h.vc(), VcId::new(3, 350), "label must be translated");
            assert_eq!(h.pti.is_last(), i % 2 == 0, "PTI preserved");
            assert!(
                cell.payload().iter().all(|&b| b == i as u8),
                "payload intact"
            );
        }
    }

    #[test]
    fn profiled_tick_matches_plain_and_charges_slots() {
        use hni_telemetry::CycleProfiler;

        let rate = LineRate::Oc3;
        let mk = || {
            let mut node = SwitchNode::new(
                SwitchConfig {
                    ports: 2,
                    output_queue_cells: 128,
                    clp_threshold: 128,
                    efci_threshold: 128,
                },
                rate,
            );
            node.fabric().add_route(
                0,
                VcId::new(0, 50),
                RouteEntry {
                    out_port: 1,
                    out_vc: VcId::new(3, 350),
                },
            );
            let mut upstream = TcTransmitter::new(rate);
            for _ in 0..14 {
                let f = upstream.pull_frame();
                node.receive_frame(0, &f, Time::ZERO);
            }
            for i in 0..10u8 {
                let cell = Cell::new(
                    &HeaderRepr::data(VcId::new(0, 50), i % 2 == 0),
                    &[i; PAYLOAD_SIZE],
                )
                .unwrap();
                upstream.push_cell(&cell);
            }
            let f = upstream.pull_frame();
            node.receive_frame(0, &f, Time::ZERO);
            node
        };

        let mut plain = mk();
        let mut profiled = mk();
        let mut prof = CycleProfiler::new();
        let f1 = plain.frame_tick(1, Time::ZERO);
        let f2 = profiled.frame_tick_profiled(1, Time::ZERO, &mut prof);
        assert_eq!(f1, f2, "profiling must not change the output frame");
        let p = prof.snapshot(Time::from_us(125));
        let slots = p.total(Component::Switch, Activity::Transfer);
        // 10 cells drained → exactly 10 output cell slots of transfer.
        assert_eq!(slots, rate.cell_slot_time() * 10);
    }

    #[test]
    fn backlog_hist_samples_every_tick() {
        let rate = LineRate::Oc3;
        let mut node = SwitchNode::new(
            SwitchConfig {
                ports: 2,
                output_queue_cells: 128,
                clp_threshold: 128,
                efci_threshold: 128,
            },
            rate,
        );
        assert_eq!(node.backlog_hist().count(), 0);
        node.frame_tick(0, Time::ZERO);
        node.frame_tick(1, Time::ZERO);
        assert_eq!(node.backlog_hist().count(), 2, "one sample per tick");
        assert_eq!(node.backlog_hist().max(), 0, "idle node has no backlog");
    }

    #[test]
    fn unrouted_traffic_dies_in_the_node() {
        let rate = LineRate::Oc3;
        let mut node = SwitchNode::new(
            SwitchConfig {
                ports: 2,
                output_queue_cells: 16,
                clp_threshold: 16,
                efci_threshold: 16,
            },
            rate,
        );
        let mut upstream = TcTransmitter::new(rate);
        for _ in 0..14 {
            let f = upstream.pull_frame();
            node.receive_frame(0, &f, Time::ZERO);
        }
        let cell = Cell::new(
            &HeaderRepr::data(VcId::new(0, 99), false),
            &[1; PAYLOAD_SIZE],
        )
        .unwrap();
        upstream.push_cell(&cell);
        for _ in 0..2 {
            let f = upstream.pull_frame();
            node.receive_frame(0, &f, Time::ZERO);
        }
        assert_eq!(node.fabric.unroutable(), 1);
        assert_eq!(node.output_backlog(1), 0);
    }
}
