//! # hni-switch — the ATM network between the host interfaces
//!
//! A host interface never sees the network's insides; it sees their
//! *consequences* — cells delayed in switch buffers and cells missing
//! because those buffers overflowed. The loss experiments (R-F5)
//! postulate an i.i.d. cell-loss process; this crate supplies the thing
//! that actually produces such losses, so the postulate can be checked:
//! an **output-queued ATM cell switch** with
//!
//! * per-(input port, VC) routing with **VPI/VCI translation** — labels
//!   are link-local in ATM, rewritten hop by hop;
//! * per-output-port FIFO queues drained at the output line's cell
//!   rate;
//! * **CLP-aware discard**: above a configurable queue threshold,
//!   cells marked discard-eligible (CLP = 1) are dropped first — the
//!   era's standard two-level space priority;
//! * full accounting: per-port offered/carried/dropped, queue
//!   occupancy statistics, unroutable-cell counts.
//!
//! The model is cell-synchronous output queueing: arrivals within one
//! slot go straight to their output queue (the fabric itself is
//! non-blocking, as output-queued fabrics are by construction); each
//! output drains one cell per slot. That is the textbook model whose
//! loss behaviour the era's analyses assumed.

pub mod fabric;
pub mod linecard;

pub use fabric::{PortStats, RouteEntry, Switch, SwitchConfig};
pub use linecard::{LineCard, SwitchNode};
