//! Property-based tests for the switch fabric.

use hni_atm::{Cell, HeaderRepr, VcId, PAYLOAD_SIZE};
use hni_sim::Time;
use hni_switch::{RouteEntry, Switch, SwitchConfig};
use proptest::prelude::*;

fn data_cell(vc: VcId, seq: u32, clp: bool) -> Cell {
    let mut payload = [0u8; PAYLOAD_SIZE];
    payload[..4].copy_from_slice(&seq.to_be_bytes());
    let h = HeaderRepr {
        clp,
        ..HeaderRepr::data(vc, false)
    };
    Cell::new(&h, &payload).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation per port: offered = carried + dropped + still queued,
    /// under any interleaving of offers and pulls.
    #[test]
    fn conservation(
        queue in 1usize..32,
        clp_frac in 0usize..=100,
        ops in proptest::collection::vec((any::<bool>(), 0u8..4, any::<bool>()), 1..500),
    ) {
        let mut sw = Switch::new(SwitchConfig {
            ports: 4,
            output_queue_cells: queue,
            clp_threshold: (queue * clp_frac / 100).min(queue),
            efci_threshold: queue,
        });
        // Route VC (0, 100+i) from input i to output (i+1)%4.
        for i in 0..4usize {
            sw.add_route(
                i,
                VcId::new(0, 100 + i as u16),
                RouteEntry { out_port: (i + 1) % 4, out_vc: VcId::new(0, 200 + i as u16) },
            );
        }
        let mut seq = 0u32;
        for (is_offer, port, clp) in ops {
            let port = port as usize;
            if is_offer {
                let _ = sw.offer(port, &data_cell(VcId::new(0, 100 + port as u16), seq, clp), Time::ZERO);
                seq += 1;
            } else {
                let _ = sw.pull(port, Time::ZERO);
            }
        }
        for p in 0..4 {
            let st = sw.port_stats(p);
            prop_assert_eq!(
                st.offered,
                st.carried + st.dropped_full + st.dropped_clp + sw.queue_len(p) as u64,
                "port {} conservation", p
            );
            prop_assert!(sw.queue_len(p) <= queue);
        }
        prop_assert_eq!(sw.unroutable(), 0);
    }

    /// FIFO order and label translation survive any offer/pull pattern:
    /// pulled sequence numbers per output are strictly increasing, labels
    /// always rewritten, payloads intact.
    #[test]
    fn order_and_translation(pulls_between in 0usize..4, n in 1usize..100) {
        let mut sw = Switch::new(SwitchConfig {
            ports: 2,
            output_queue_cells: 4096,
            clp_threshold: 4096,
            efci_threshold: 4096,
        });
        let in_vc = VcId::new(1, 40);
        let out_vc = VcId::new(9, 900);
        sw.add_route(0, in_vc, RouteEntry { out_port: 1, out_vc });
        let mut pulled: Vec<u32> = Vec::new();
        for seq in 0..n as u32 {
            prop_assert!(sw.offer(0, &data_cell(in_vc, seq, false), Time::ZERO));
            for _ in 0..pulls_between {
                if let Some(c) = sw.pull(1, Time::ZERO) {
                    let h = c.header().unwrap();
                    prop_assert_eq!(h.vc(), out_vc);
                    let got = u32::from_be_bytes([
                        c.payload()[0], c.payload()[1], c.payload()[2], c.payload()[3],
                    ]);
                    pulled.push(got);
                }
            }
        }
        while let Some(c) = sw.pull(1, Time::ZERO) {
            let got = u32::from_be_bytes([
                c.payload()[0], c.payload()[1], c.payload()[2], c.payload()[3],
            ]);
            pulled.push(got);
        }
        prop_assert_eq!(pulled.len(), n);
        for (i, &s) in pulled.iter().enumerate() {
            prop_assert_eq!(s, i as u32, "FIFO order violated");
        }
    }

    /// CLP=0 cells are never dropped while the queue is below capacity,
    /// regardless of the CLP threshold.
    #[test]
    fn clp0_protected_until_full(queue in 2usize..32, thr_frac in 0usize..=100) {
        let mut sw = Switch::new(SwitchConfig {
            ports: 2,
            output_queue_cells: queue,
            clp_threshold: (queue * thr_frac / 100).min(queue),
            efci_threshold: queue,
        });
        let vc = VcId::new(0, 32);
        sw.add_route(0, vc, RouteEntry { out_port: 1, out_vc: vc });
        for seq in 0..queue as u32 {
            prop_assert!(
                sw.offer(0, &data_cell(vc, seq, false), Time::ZERO),
                "CLP=0 cell refused below capacity"
            );
        }
        prop_assert!(!sw.offer(0, &data_cell(vc, 999, false), Time::ZERO));
        prop_assert_eq!(sw.port_stats(1).dropped_clp, 0);
        prop_assert_eq!(sw.port_stats(1).dropped_full, 1);
    }
}
