//! Deterministic pseudo-random number generation.
//!
//! A hand-rolled **xoshiro256\*\*** generator seeded through SplitMix64.
//! We implement it locally (rather than pulling `rand`) so that the random
//! stream — and therefore every simulation result in EXPERIMENTS.md — can
//! never change underneath us with a dependency upgrade. The algorithm is
//! public domain (Blackman & Vigna, 2018).

/// Deterministic PRNG (xoshiro256**) with convenience samplers.
///
/// The generator counts how many raw 64-bit values it has produced
/// (`draws`), so tests can prove that a code path consumed *zero*
/// randomness — the contract the fault-injection fast paths rely on.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
    draws: u64,
}

impl Rng {
    /// Create a generator from a 64-bit seed.
    ///
    /// The full 256-bit state is expanded from the seed with SplitMix64,
    /// per the xoshiro authors' recommendation, so nearby seeds give
    /// uncorrelated streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Rng { s, draws: 0 }
    }

    /// How many raw 64-bit values this generator has produced. Every
    /// sampler ultimately calls [`Rng::next_u64`], so a `draws()` delta of
    /// zero proves a code path consulted no randomness at all.
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Next raw 64 bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift with rejection, so the distribution is
    /// exactly uniform. Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Lemire 2019: unbiased bounded generation.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Sample a geometric "number of successes before failure"-style gap:
    /// the number of Bernoulli(p) trials *until and including* the first
    /// success, i.e. a value in `1..`. Used to skip ahead over bit positions
    /// when injecting rare bit errors instead of rolling per bit.
    ///
    /// For `p` very small this is exponentially faster than per-trial
    /// sampling and produces the same distribution.
    #[inline]
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "geometric needs p in (0,1]");
        if p >= 1.0 {
            return 1;
        }
        let u = self.f64().max(f64::MIN_POSITIVE); // avoid ln(0)
        let g = (u.ln() / (1.0 - p).ln()).floor() as u64;
        g + 1
    }

    /// Exponentially distributed value with the given mean.
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0);
        let u = self.f64().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Fork an independent generator, advancing this one.
    ///
    /// Components get their own forked stream so that adding a sampler to
    /// one component does not perturb another component's randomness.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

/// A Zipf(s) sampler over ranks `0..n`: rank `k` is drawn with
/// probability proportional to `1 / (k+1)^s`.
///
/// This is the canonical "few hot connections, a long cold tail"
/// arrival mix — the shape real VC populations have, and the worst case
/// for a connection table's cache behaviour (the hot set thrashes one
/// probe neighbourhood while the tail keeps the table big). The CDF is
/// precomputed and normalized at construction; each sample costs
/// exactly one [`Rng::next_u64`] draw plus a binary search, so the draw
/// accounting stays exact and the stream is reproducible regardless of
/// how many samples a worker takes.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// If `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over zero ranks is meaningless");
        assert!(s.is_finite(), "Zipf exponent must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one rank in `0..n` (rank 0 is the hottest).
    #[inline]
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.f64();
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_bounded_and_covers() {
        let mut r = Rng::new(9);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let x = r.below(10) as usize;
            assert!(x < 10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_inclusive() {
        let mut r = Rng::new(11);
        for _ in 0..1000 {
            let x = r.range(5, 7);
            assert!((5..=7).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(13);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn chance_extremes_draw_nothing() {
        let mut r = Rng::new(13);
        r.chance(0.0);
        r.chance(1.0);
        r.chance(-3.0);
        assert_eq!(r.draws(), 0, "degenerate Bernoulli must be free");
        r.chance(0.5);
        assert_eq!(r.draws(), 1);
    }

    #[test]
    fn draws_counts_every_sampler() {
        let mut r = Rng::new(99);
        assert_eq!(r.draws(), 0);
        r.next_u64();
        r.f64();
        assert_eq!(r.draws(), 2);
        let before = r.draws();
        r.geometric(0.01);
        assert_eq!(r.draws(), before + 1);
    }

    #[test]
    fn chance_frequency_close() {
        let mut r = Rng::new(17);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.chance(0.25)).count() as f64;
        let freq = hits / n as f64;
        assert!((freq - 0.25).abs() < 0.01, "freq={freq}");
    }

    #[test]
    fn geometric_mean_close() {
        let mut r = Rng::new(19);
        let p = 0.01;
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.geometric(p) as f64).sum::<f64>() / n as f64;
        // Mean of this geometric is 1/p = 100.
        assert!((mean - 100.0).abs() < 5.0, "mean={mean}");
    }

    #[test]
    fn geometric_p1_is_always_1() {
        let mut r = Rng::new(23);
        for _ in 0..100 {
            assert_eq!(r.geometric(1.0), 1);
        }
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = Rng::new(29);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn fork_streams_are_independent_and_deterministic() {
        let mut a = Rng::new(5);
        let mut b = Rng::new(5);
        let mut fa = a.fork();
        let mut fb = b.fork();
        for _ in 0..100 {
            assert_eq!(fa.next_u64(), fb.next_u64());
        }
        // Parent advanced identically too.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zipf_is_bounded_head_heavy_and_single_draw() {
        let z = Zipf::new(1000, 1.1);
        let mut r = Rng::new(37);
        let n = 50_000;
        let mut counts = vec![0u64; 1000];
        let before = r.draws();
        for _ in 0..n {
            counts[z.sample(&mut r)] += 1;
        }
        assert_eq!(r.draws() - before, n, "exactly one draw per sample");
        // Rank 0 dominates rank 1 dominates the deep tail.
        assert!(counts[0] > counts[1]);
        assert!(counts[0] > 20 * counts[500].max(1));
        // Every sample was in range (counts indexing would have panicked
        // otherwise) and the head carries a Zipf-like share.
        let head: u64 = counts[..10].iter().sum();
        assert!(head as f64 / n as f64 > 0.4, "head share {head}");
    }

    #[test]
    fn zipf_deterministic_for_seed() {
        let z = Zipf::new(257, 0.9);
        let mut a = Rng::new(41);
        let mut b = Rng::new(41);
        for _ in 0..1000 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    fn zipf_n1_always_rank_zero() {
        let z = Zipf::new(1, 1.0);
        let mut r = Rng::new(43);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut r), 0);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(31);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }
}
