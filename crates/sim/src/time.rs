//! Simulated time: picosecond-resolution instants and durations.
//!
//! `Time` is an absolute instant since simulation start; `Duration` is a
//! span. Both wrap a `u64` count of picoseconds. Arithmetic is checked in
//! debug builds (overflow panics) and wrapping is never meaningful, so the
//! operators use plain `+`/`-` which panic on overflow in debug and are
//! well past any realistic horizon in release.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds in one nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds in one microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds in one millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds in one second.
pub const PS_PER_S: u64 = 1_000_000_000_000;

/// An absolute simulated instant, in picoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of simulated time, in picoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Time {
    /// The instant at simulation start.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant (used as an "infinitely far" sentinel).
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }
    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns * PS_PER_NS)
    }
    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Time(us * PS_PER_US)
    }
    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        Time(ms * PS_PER_MS)
    }
    /// Construct from seconds.
    #[inline]
    pub const fn from_s(s: u64) -> Self {
        Time(s * PS_PER_S)
    }

    /// Picoseconds since simulation start.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// Value in (fractional) nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }
    /// Value in (fractional) microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }
    /// Value in (fractional) seconds.
    #[inline]
    pub fn as_s_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// Span from an earlier instant to `self`.
    ///
    /// Returns `Duration::ZERO` if `earlier` is actually later; simulations
    /// use this when an event may be processed at the same timestamp it was
    /// stamped with.
    #[inline]
    pub fn saturating_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);
    /// The largest representable span.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Construct from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Duration(ps)
    }
    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Duration(ns * PS_PER_NS)
    }
    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Duration(us * PS_PER_US)
    }
    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        Duration(ms * PS_PER_MS)
    }
    /// Construct from seconds.
    #[inline]
    pub const fn from_s(s: u64) -> Self {
        Duration(s * PS_PER_S)
    }
    /// Construct from fractional seconds, rounding to the nearest picosecond.
    ///
    /// Panics if `s` is negative, non-finite, or out of range.
    pub fn from_s_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0 && s <= u64::MAX as f64 / PS_PER_S as f64,
            "duration out of range: {s}"
        );
        Duration((s * PS_PER_S as f64).round() as u64)
    }

    /// The time it takes to move `bits` bits at `bits_per_second`,
    /// rounded to the nearest picosecond.
    ///
    /// This is the single conversion used everywhere rates meet time, so
    /// serialization delays are consistent across the workspace.
    pub fn for_bits(bits: u64, bits_per_second: f64) -> Self {
        assert!(bits_per_second > 0.0, "rate must be positive");
        Duration(((bits as f64) * PS_PER_S as f64 / bits_per_second).round() as u64)
    }

    /// Picoseconds in this span.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// Value in fractional nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }
    /// Value in fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }
    /// Value in fractional seconds.
    #[inline]
    pub fn as_s_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    /// Multiply by an integer count.
    #[inline]
    pub const fn times(self, n: u64) -> Duration {
        Duration(self.0 * n)
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}
impl AddAssign<Duration> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}
impl Sub<Duration> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Duration) -> Time {
        Time(self.0 - rhs.0)
    }
}
impl Sub<Time> for Time {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Time) -> Duration {
        Duration(self.0 - rhs.0)
    }
}
impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}
impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}
impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}
impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}
impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}
impl Div<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}
impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, Add::add)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_ps(self.0))
    }
}
impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_ps(self.0))
    }
}
impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_ps(self.0))
    }
}
impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_ps(self.0))
    }
}

/// Render a picosecond count with an adaptive unit (ps/ns/µs/ms/s).
fn format_ps(ps: u64) -> String {
    if ps < PS_PER_NS {
        format!("{ps}ps")
    } else if ps < PS_PER_US {
        format!("{:.3}ns", ps as f64 / PS_PER_NS as f64)
    } else if ps < PS_PER_MS {
        format!("{:.3}us", ps as f64 / PS_PER_US as f64)
    } else if ps < PS_PER_S {
        format!("{:.3}ms", ps as f64 / PS_PER_MS as f64)
    } else {
        format!("{:.6}s", ps as f64 / PS_PER_S as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(Time::from_ns(1).as_ps(), 1_000);
        assert_eq!(Time::from_us(1).as_ps(), 1_000_000);
        assert_eq!(Time::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(Time::from_s(1).as_ps(), 1_000_000_000_000);
        assert_eq!(Duration::from_ns(5).as_ns_f64(), 5.0);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_ns(100) + Duration::from_ns(50);
        assert_eq!(t, Time::from_ns(150));
        assert_eq!(t - Time::from_ns(100), Duration::from_ns(50));
        assert_eq!(Duration::from_ns(10) * 3, Duration::from_ns(30));
        assert_eq!(Duration::from_ns(30) / 3, Duration::from_ns(10));
    }

    #[test]
    fn cell_time_at_oc12_is_681_6_ns() {
        // 53 bytes at 622.08 Mb/s: the number the whole paper's analysis
        // hangs on. 424 bits / 622.08e6 = 681.584.. ns.
        let d = Duration::for_bits(53 * 8, 622.08e6);
        assert_eq!(d.as_ps(), 681_584); // 681.584 ns to the ps
    }

    #[test]
    fn cell_time_at_oc3_is_2_726_us() {
        let d = Duration::for_bits(53 * 8, 155.52e6);
        assert_eq!(d.as_ps(), 2_726_337); // 2.726337 µs
    }

    #[test]
    fn saturating_since() {
        let a = Time::from_ns(10);
        let b = Time::from_ns(20);
        assert_eq!(b.saturating_since(a), Duration::from_ns(10));
        assert_eq!(a.saturating_since(b), Duration::ZERO);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", Duration::from_ps(500)), "500ps");
        assert_eq!(format!("{}", Duration::from_ns(1)), "1.000ns");
        assert_eq!(format!("{}", Duration::from_us(2)), "2.000us");
        assert_eq!(format!("{}", Duration::from_ms(3)), "3.000ms");
        assert_eq!(format!("{}", Duration::from_s(4)), "4.000000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: Duration = [1u64, 2, 3].iter().map(|&n| Duration::from_ns(n)).sum();
        assert_eq!(total, Duration::from_ns(6));
    }

    #[test]
    fn from_s_f64_rounds() {
        assert_eq!(Duration::from_s_f64(1e-12), Duration::from_ps(1));
        assert_eq!(Duration::from_s_f64(0.5e-12), Duration::from_ps(1)); // round half up
    }

    #[test]
    #[should_panic]
    fn from_s_f64_rejects_negative() {
        let _ = Duration::from_s_f64(-1.0);
    }
}
