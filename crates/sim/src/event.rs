//! The deterministic event queue at the heart of every simulation here.
//!
//! `EventQueue<E>` is generic over the embedding simulation's event payload
//! type: each crate that builds a simulation (the NIC pipelines, the
//! end-to-end harness, …) defines its own `enum` of events and drives a
//! plain `while let Some((t, ev)) = q.pop()` loop. Keeping control flow in
//! the embedder — rather than dispatching through trait objects — keeps
//! the borrow checker out of the way and the event loop monomorphic.
//!
//! ## Ordering guarantees
//!
//! Events are delivered in non-decreasing timestamp order. Two events with
//! the **same** timestamp are delivered in the order they were scheduled
//! (FIFO tie-break via a monotonically increasing sequence number). This is
//! what makes simulations reproducible: a `BinaryHeap` alone would break
//! ties arbitrarily.
//!
//! Scheduling an event in the past (before the current clock) is a logic
//! error in the embedding simulation and panics immediately rather than
//! silently reordering causality.

use crate::time::{Duration, Time};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: Time,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, on ties,
        // first-scheduled) entry is the maximum.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event queue with a clock.
///
/// The queue owns the simulated clock: `pop` advances it to the timestamp
/// of the delivered event. See the module docs for ordering guarantees.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: Time,
    seq: u64,
    delivered: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at `Time::ZERO`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: Time::ZERO,
            seq: 0,
            delivered: 0,
        }
    }

    /// Current simulated time (timestamp of the last delivered event).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events delivered so far.
    #[inline]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Schedule `payload` for absolute time `at`.
    ///
    /// # Panics
    /// If `at` is earlier than the current clock.
    pub fn schedule(&mut self, at: Time, payload: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: at={at} now={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Schedule `payload` to fire `after` from now.
    pub fn schedule_in(&mut self, after: Duration, payload: E) {
        self.schedule(self.now + after, payload);
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Deliver the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let e = self.heap.pop()?;
        debug_assert!(e.at >= self.now);
        self.now = e.at;
        self.delivered += 1;
        Some((e.at, e.payload))
    }

    /// Deliver the next event only if it fires at or before `deadline`.
    ///
    /// If the next event is later than `deadline`, the clock advances to
    /// `deadline` and `None` is returned — useful for running a simulation
    /// "for 10 ms" regardless of what is pending.
    pub fn pop_until(&mut self, deadline: Time) -> Option<(Time, E)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => {
                if deadline > self.now {
                    self.now = deadline;
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(30), "c");
        q.schedule(Time::from_ns(10), "a");
        q.schedule(Time::from_ns(20), "b");
        assert_eq!(q.pop(), Some((Time::from_ns(10), "a")));
        assert_eq!(q.pop(), Some((Time::from_ns(20), "b")));
        assert_eq!(q.pop(), Some((Time::from_ns(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Time::from_ns(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(7), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::from_ns(7));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(10), ());
        q.pop();
        q.schedule(Time::from_ns(5), ());
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(10), 1);
        q.pop();
        q.schedule_in(Duration::from_ns(5), 2);
        assert_eq!(q.pop(), Some((Time::from_ns(15), 2)));
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(100), "late");
        assert_eq!(q.pop_until(Time::from_ns(50)), None);
        assert_eq!(q.now(), Time::from_ns(50));
        assert_eq!(
            q.pop_until(Time::from_ns(200)),
            Some((Time::from_ns(100), "late"))
        );
    }

    #[test]
    fn pop_until_never_rewinds_clock() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(Time::from_ns(100), ());
        q.pop();
        assert_eq!(q.pop_until(Time::from_ns(50)), None);
        assert_eq!(q.now(), Time::from_ns(100));
    }

    #[test]
    fn delivered_counts() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(1), ());
        q.schedule(Time::from_ns(2), ());
        q.pop();
        q.pop();
        assert_eq!(q.delivered(), 2);
    }
}
