//! # hni-sim — deterministic discrete-event simulation substrate
//!
//! This crate is the simulation kernel underneath the whole `hni` workspace.
//! It deliberately contains **no networking knowledge**: just time, a
//! deterministic event queue, a deterministic PRNG, statistics collectors,
//! bounded FIFOs with occupancy accounting, and a lossy/erroring link model
//! that higher layers parameterise with their own payload types.
//!
//! ## Design rules
//!
//! * **Determinism.** Given the same seed and the same sequence of calls, a
//!   simulation produces bit-identical results on every platform. The event
//!   queue breaks timestamp ties by insertion order; the PRNG is a
//!   hand-rolled xoshiro256** (so no external crate version can change the
//!   stream); no wall-clock or OS entropy is consulted anywhere.
//! * **Picosecond clock.** Time is a `u64` count of picoseconds. At ATM
//!   rates the natural quanta are sub-nanosecond (one bit at 622.08 Mb/s
//!   lasts ≈ 1607.5 ps), so nanoseconds would accumulate rounding error in
//!   exactly the quantities the paper's delay analysis cares about. A `u64`
//!   of picoseconds spans ~213 days of simulated time — far beyond any
//!   experiment here.
//! * **No allocation on the hot path.** Queues are ring buffers; statistics
//!   are fixed-size; event entries are moved, not boxed (the event payload
//!   type is chosen by the embedding simulation).
//!
//! ## Non-goals
//!
//! No threads, no async, no I/O. Simulations in this workspace are
//! CPU-bound and single-threaded by construction; reproducibility beats
//! parallelism for an evaluation harness.

pub mod event;
pub mod faults;
pub mod link;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

pub use event::EventQueue;
pub use faults::{
    BusFaultPlan, DelayLine, DelayModel, FaultInjector, FaultPlan, FaultProcess, GeParams, UnitFate,
};
pub use link::{Link, LinkDelivery};
pub use queue::BoundedFifo;
pub use rng::{Rng, Zipf};
pub use stats::{Counter, Histogram, OccupancyTracker, RateMeter, Summary, HIST_BUCKETS};
pub use time::{Duration, Time};
