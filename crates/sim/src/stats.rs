//! Statistics collectors for simulations.
//!
//! Everything here is O(1) per sample and fixed-size, so instrumentation
//! never changes the asymptotics of a simulation. The collectors:
//!
//! * [`Counter`] — events and bytes.
//! * [`Summary`] — running min/max/mean/variance (Welford).
//! * [`Histogram`] — log₂-bucketed latency histogram with quantile queries.
//! * [`RateMeter`] — converts byte/cell counts over simulated time to bit/s.
//! * [`OccupancyTracker`] — time-weighted queue-occupancy statistics
//!   (mean and peak), the quantity FIFO-sizing decisions are made from.

use crate::time::{Duration, Time};
use core::fmt;

/// A simple event/byte counter.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    events: u64,
    bytes: u64,
}

impl Counter {
    /// New zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }
    /// Record one event carrying `bytes` bytes.
    #[inline]
    pub fn add(&mut self, bytes: u64) {
        self.events += 1;
        self.bytes += bytes;
    }
    /// Record one event with no byte count.
    #[inline]
    pub fn bump(&mut self) {
        self.events += 1;
    }
    /// Number of events recorded.
    pub fn events(&self) -> u64 {
        self.events
    }
    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// Running min / max / mean / variance over `f64` samples (Welford's
/// single-pass algorithm, numerically stable).
#[derive(Clone, Debug)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        // NOT derived: min/max must start at ±∞, not 0, or the first
        // sample would never register as an extreme.
        Self::new()
    }
}

impl Summary {
    /// New empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record a sample.
    #[inline]
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Record a duration sample in microseconds (the unit the paper's
    /// delay analysis reports).
    #[inline]
    pub fn record_us(&mut self, d: Duration) {
        self.record(d.as_us_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }
    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }
    /// Population variance (0 if fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }
    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
    /// Smallest sample (0 if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }
    /// Largest sample (0 if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.n,
            self.mean(),
            self.std_dev(),
            self.min(),
            self.max()
        )
    }
}

/// Number of log₂ buckets in [`Histogram`]: values 0..2⁶³ are covered.
pub const HIST_BUCKETS: usize = 64;

/// Log₂-bucketed histogram of `u64` samples (typically picoseconds).
///
/// Bucket `i` holds samples whose value `v` satisfies `⌊log₂ v⌋ == i`
/// (bucket 0 additionally holds `v == 0`). Quantile queries return the
/// upper bound of the bucket containing the requested rank, i.e. they are
/// exact to within a factor of 2 — adequate for the order-of-magnitude
/// latency-tail questions the experiments ask, at constant memory.
#[derive(Clone)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    #[inline]
    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            63 - v.leading_zeros() as usize
        }
    }

    /// Record a sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        if v > self.max {
            self.max = v;
        }
    }

    /// Record a duration (in picoseconds).
    #[inline]
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_ps());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact arithmetic mean of samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest sample ever recorded, exactly (0 if empty). The one tail
    /// statistic log₂ bucketing cannot bound from above is tracked
    /// outside the buckets, so `max` carries no quantization error.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of all samples, exactly.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// The raw log₂ bucket counts (`buckets[i]` holds samples with
    /// `⌊log₂ v⌋ == i`; bucket 0 also holds `v == 0`). Exposed for
    /// mergeable exports (Prometheus cumulative buckets).
    pub fn bucket_counts(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// Upper bound (inclusive) of bucket `i`: the largest value that
    /// lands in it.
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i >= 63 {
            u64::MAX
        } else {
            (2u64 << i) - 1
        }
    }

    /// Fold another histogram into this one. Bucket-wise addition —
    /// merging the shards of a parallel run is exact (the merged
    /// histogram equals the histogram of the concatenated samples).
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`q` in `[0,1]`). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // clamp() propagates NaN; treat a NaN quantile as 0 explicitly.
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper_bound(i);
            }
        }
        u64::MAX
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Histogram {{ n: {}, mean: {:.1}, p50≤{}, p99≤{} }}",
            self.count,
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.99)
        )
    }
}

/// Converts counted bytes (or cells) over simulated time into rates.
#[derive(Clone, Debug, Default)]
pub struct RateMeter {
    bytes: u64,
    units: u64,
    started: Option<Time>,
    last: Time,
}

impl RateMeter {
    /// New meter; the window opens at the first record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `bytes` observed at simulated time `now`.
    #[inline]
    pub fn record(&mut self, now: Time, bytes: u64) {
        if self.started.is_none() {
            self.started = Some(now);
        }
        self.bytes += bytes;
        self.units += 1;
        self.last = now;
    }

    /// Total bytes observed.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
    /// Total units (packets / cells) observed.
    pub fn units(&self) -> u64 {
        self.units
    }

    /// Mean rate in bits/second over `[first record, end]`.
    ///
    /// `end` is supplied by the caller (usually the simulation end time) so
    /// that quiet tails count against the rate.
    pub fn bits_per_second(&self, end: Time) -> f64 {
        match self.started {
            None => 0.0,
            Some(t0) => {
                let span = end.saturating_since(t0).as_s_f64();
                if span <= 0.0 {
                    0.0
                } else {
                    (self.bytes as f64 * 8.0) / span
                }
            }
        }
    }

    /// Mean unit rate (packets or cells per second) over `[first record, end]`.
    pub fn units_per_second(&self, end: Time) -> f64 {
        match self.started {
            None => 0.0,
            Some(t0) => {
                let span = end.saturating_since(t0).as_s_f64();
                if span <= 0.0 {
                    0.0
                } else {
                    self.units as f64 / span
                }
            }
        }
    }
}

/// Time-weighted occupancy statistics for a queue or buffer pool.
///
/// Feed it every occupancy change; it integrates occupancy over time to
/// give the true time-average, plus the peak — the two numbers buffer
/// sizing is done from.
///
/// Timestamps are expected to be non-decreasing. An out-of-order sample
/// is **clamped**, not honored retroactively: the level and peak update
/// immediately, the interval contributes zero area (`saturating_since`
/// yields zero), and the tracker's clock does *not* rewind — later
/// in-order samples keep integrating from the latest time ever seen.
/// For monotonic inputs the behavior is unchanged.
#[derive(Clone, Debug, Default)]
pub struct OccupancyTracker {
    current: u64,
    peak: u64,
    weighted_area: u128, // Σ occupancy · dt(ps)
    last_change: Time,
    started: bool,
}

impl OccupancyTracker {
    /// New tracker at occupancy 0.
    pub fn new() -> Self {
        Self::default()
    }

    fn integrate(&mut self, now: Time) {
        if self.started {
            let dt = now.saturating_since(self.last_change).as_ps();
            self.weighted_area += self.current as u128 * dt as u128;
            // Clamp, don't rewind: an out-of-order `now` must not drag
            // the clock backwards, or the next in-order sample would
            // double-integrate the interval it re-crosses.
            if now > self.last_change {
                self.last_change = now;
            }
        } else {
            self.started = true;
            self.last_change = now;
        }
    }

    /// Set occupancy to an absolute value at time `now`.
    ///
    /// `now` earlier than the previous change is clamped (see the type
    /// docs): the level changes, the clock does not move back.
    pub fn set(&mut self, now: Time, occupancy: u64) {
        self.integrate(now);
        self.current = occupancy;
        if occupancy > self.peak {
            self.peak = occupancy;
        }
    }

    /// Increase occupancy by `n` at time `now`.
    pub fn add(&mut self, now: Time, n: u64) {
        let c = self.current + n;
        self.set(now, c);
    }

    /// Decrease occupancy by `n` at time `now` (saturating).
    pub fn remove(&mut self, now: Time, n: u64) {
        let c = self.current.saturating_sub(n);
        self.set(now, c);
    }

    /// Current occupancy.
    pub fn current(&self) -> u64 {
        self.current
    }
    /// Highest occupancy ever seen.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Time-weighted mean occupancy over `[first change, end]`.
    pub fn mean(&self, end: Time) -> f64 {
        if !self.started {
            return 0.0;
        }
        let tail = end.saturating_since(self.last_change).as_ps();
        let area = self.weighted_area + self.current as u128 * tail as u128;
        let span = end.saturating_since(Time::ZERO).as_ps();
        // Mean is over the whole simulation from t=0; a tracker that first
        // changes late simply averages in its implicit zero prefix, which
        // is the honest accounting for buffer sizing.
        if span == 0 {
            self.current as f64
        } else {
            area as f64 / span as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.add(100);
        c.add(200);
        c.bump();
        assert_eq!(c.events(), 3);
        assert_eq!(c.bytes(), 300);
    }

    #[test]
    fn summary_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_default_equals_new() {
        // Regression: a derived Default once zero-initialized min/max,
        // so summaries built via `or_default()` reported min = 0 forever.
        let mut s = Summary::default();
        s.record(42.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn summary_empty_is_zeroes() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn histogram_mean_exact() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert!((h.mean() - 20.0).abs() < 1e-12);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn histogram_quantile_bounds() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(100); // bucket ⌊log2 100⌋ = 6, upper bound 127
        }
        h.record(1_000_000); // bucket 19, upper bound 2^20-1
        assert_eq!(h.quantile(0.5), 127);
        assert!(h.quantile(0.999) >= 1_000_000);
        assert!(h.quantile(0.999) < 2_097_152);
    }

    #[test]
    fn histogram_zero_sample() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.quantile(1.0), 1); // bucket 0 upper bound = 1
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn rate_meter_bps() {
        let mut m = RateMeter::new();
        m.record(Time::ZERO, 125); // 1000 bits
        m.record(Time::from_us(1), 125);
        // 2000 bits over 2 µs window (t0=0, end=2µs) = 1 Gb/s
        let bps = m.bits_per_second(Time::from_us(2));
        assert!((bps - 1e9).abs() / 1e9 < 1e-12, "bps={bps}");
        assert!((m.units_per_second(Time::from_us(2)) - 1e6).abs() < 1.0);
    }

    #[test]
    fn rate_meter_empty() {
        let m = RateMeter::new();
        assert_eq!(m.bits_per_second(Time::from_s(1)), 0.0);
    }

    #[test]
    fn rate_meter_zero_elapsed_window() {
        // A record followed by a query at the same instant must not
        // divide by zero (or return ±∞ / NaN).
        let mut m = RateMeter::new();
        m.record(Time::from_us(3), 1000);
        assert_eq!(m.bits_per_second(Time::from_us(3)), 0.0);
        assert_eq!(m.units_per_second(Time::from_us(3)), 0.0);
    }

    #[test]
    fn rate_meter_end_before_start() {
        // Querying a window that closes before it opened saturates to a
        // zero span and reports a zero rate, not a negative one.
        let mut m = RateMeter::new();
        m.record(Time::from_ms(10), 500);
        assert_eq!(m.bits_per_second(Time::from_ms(1)), 0.0);
        assert_eq!(m.units_per_second(Time::ZERO), 0.0);
    }

    #[test]
    fn histogram_max_is_exact_and_merge_is_concatenation() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [3u64, 100, 999] {
            a.record(v);
            all.record(v);
        }
        for v in [0u64, 7, 1_000_000] {
            b.record(v);
            all.record(v);
        }
        assert_eq!(a.max(), 999);
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        assert_eq!(a.max(), 1_000_000, "merge keeps the larger exact max");
        assert_eq!(a.bucket_counts(), all.bucket_counts());
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), all.quantile(q), "q={q}");
        }
    }

    #[test]
    fn histogram_bucket_bounds_cover_u64() {
        assert_eq!(Histogram::bucket_upper_bound(0), 1);
        assert_eq!(Histogram::bucket_upper_bound(6), 127);
        assert_eq!(Histogram::bucket_upper_bound(63), u64::MAX);
        // Every value lands in a bucket whose bound is ≥ the value and
        // < 2× the value (the log₂ quantization error bound).
        for v in [1u64, 2, 3, 127, 128, 1 << 40, u64::MAX] {
            let mut h = Histogram::new();
            h.record(v);
            let q = h.quantile(1.0);
            assert!(q >= v, "bound below sample for {v}");
            if v > 1 && v < (1 << 62) {
                assert!(q < v.saturating_mul(2), "bound ≥ 2x for {v}");
            }
        }
    }

    #[test]
    fn histogram_empty_quantile_and_mean() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn histogram_quantile_pathological_q() {
        let mut h = Histogram::new();
        h.record(100);
        h.record(200_000);
        // Out-of-range and NaN quantiles clamp instead of panicking or
        // propagating NaN through the rank arithmetic.
        assert_eq!(h.quantile(-3.0), h.quantile(0.0));
        assert_eq!(h.quantile(7.5), h.quantile(1.0));
        assert_eq!(h.quantile(f64::NAN), h.quantile(0.0));
    }

    #[test]
    fn occupancy_mean_at_time_zero() {
        // span == 0: the mean degenerates to the current occupancy
        // rather than dividing by zero.
        let mut o = OccupancyTracker::new();
        o.set(Time::ZERO, 5);
        assert_eq!(o.mean(Time::ZERO), 5.0);
        // And an untouched tracker reports zero everywhere.
        let empty = OccupancyTracker::new();
        assert_eq!(empty.mean(Time::from_s(1)), 0.0);
        assert_eq!(empty.peak(), 0);
    }

    #[test]
    fn occupancy_time_weighted_mean() {
        let mut o = OccupancyTracker::new();
        o.set(Time::ZERO, 10);
        o.set(Time::from_us(1), 0);
        // 10 for 1µs, 0 for 1µs → mean 5 over 2µs.
        let mean = o.mean(Time::from_us(2));
        assert!((mean - 5.0).abs() < 1e-9, "mean={mean}");
        assert_eq!(o.peak(), 10);
    }

    #[test]
    fn occupancy_non_monotonic_set_clamps_without_rewinding() {
        let mut o = OccupancyTracker::new();
        o.set(Time::ZERO, 4);
        o.set(Time::from_us(2), 8); // area += 4 · 2µs
                                    // Out of order: level and peak update, zero retroactive area,
                                    // and the clock stays at 2 µs.
        o.set(Time::from_us(1), 100);
        assert_eq!(o.current(), 100);
        assert_eq!(o.peak(), 100);
        // In-order again: integrates 100 from 2 µs (not from 1 µs).
        o.set(Time::from_us(3), 0); // area += 100 · 1µs
        let mean = o.mean(Time::from_us(4)); // (8 + 100) / 4
        assert!((mean - 27.0).abs() < 1e-9, "mean={mean}");
    }

    #[test]
    fn occupancy_repeated_timestamp_is_fine() {
        // Equal timestamps are the degenerate in-order case: zero-width
        // intervals, last write wins on the level.
        let mut o = OccupancyTracker::new();
        o.set(Time::from_us(1), 3);
        o.set(Time::from_us(1), 7);
        o.set(Time::from_us(1), 2);
        assert_eq!(o.current(), 2);
        assert_eq!(o.peak(), 7);
        let mean = o.mean(Time::from_us(2)); // 2 for 1µs over a 2µs span
        assert!((mean - 1.0).abs() < 1e-9, "mean={mean}");
    }

    #[test]
    fn occupancy_add_remove() {
        let mut o = OccupancyTracker::new();
        o.add(Time::ZERO, 3);
        o.add(Time::from_ns(10), 2);
        o.remove(Time::from_ns(20), 4);
        assert_eq!(o.current(), 1);
        assert_eq!(o.peak(), 5);
        o.remove(Time::from_ns(30), 10);
        assert_eq!(o.current(), 0, "saturates at zero");
    }
}
