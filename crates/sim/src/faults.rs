//! Deterministic, seeded fault plans — the misbehaviour vocabulary for
//! every injection point in the workspace.
//!
//! A [`FaultPlan`] describes what can go wrong to a stream of
//! transmitted units (cells, frames, bus words): whole-unit loss, bit
//! corruption, duplication, and bounded reordering. Loss and corruption
//! are driven by a [`FaultProcess`] — either the degenerate i.i.d.
//! process (one Bernoulli rate, what the old `FaultSpec` expressed) or a
//! two-state **Gilbert–Elliott** chain whose Good/Bad states make
//! errors bursty, the way real links and congested switches actually
//! fail.
//!
//! A [`FaultInjector`] owns the plan, the channel state and the RNG
//! stream, and answers one question per unit: *what is this unit's
//! fate?* Everything is deterministic per seed, and the empty plan is
//! free — [`FaultInjector::fate`] on [`FaultPlan::NONE`] draws **zero**
//! random values and allocates nothing, a contract the golden tests
//! pin down with [`crate::rng::Rng::draws`].
//!
//! Bus-level faults (arbitration stalls, aborted-and-retried bursts)
//! have their own tiny plan, [`BusFaultPlan`], consumed by the bus
//! model in `hni-core`.

use crate::rng::Rng;
use crate::time::Duration;

/// Parameters of a two-state Gilbert–Elliott channel.
///
/// The chain steps once per transmitted unit: from Good it enters Bad
/// with `p_good_to_bad`, from Bad it recovers with `p_bad_to_good`.
/// While in a state, events (unit loss or bit errors, depending on
/// which process the chain drives) occur at that state's rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GeParams {
    /// Per-unit probability of entering the Bad state from Good.
    pub p_good_to_bad: f64,
    /// Per-unit probability of recovering from Bad to Good.
    pub p_bad_to_good: f64,
    /// Event rate while Good (often 0.0).
    pub good: f64,
    /// Event rate while Bad (≫ `good`; that is the point).
    pub bad: f64,
}

impl GeParams {
    fn validate(&self, what: &str) {
        for (name, p) in [
            ("p_good_to_bad", self.p_good_to_bad),
            ("p_bad_to_good", self.p_bad_to_good),
            ("good", self.good),
            ("bad", self.bad),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{what}: Gilbert–Elliott {name} {p} outside [0,1]"
            );
        }
    }
}

/// A stochastic process supplying a per-unit event rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultProcess {
    /// Never.
    Off,
    /// Independent, identically distributed: a fixed rate every unit —
    /// the degenerate one-state plan the old `FaultSpec` expressed.
    Iid(f64),
    /// Bursty: rate follows a two-state Gilbert–Elliott chain.
    Ge(GeParams),
}

impl FaultProcess {
    /// Does this process ever fire?
    pub fn is_off(&self) -> bool {
        match self {
            FaultProcess::Off => true,
            FaultProcess::Iid(p) => *p <= 0.0,
            FaultProcess::Ge(g) => g.good <= 0.0 && (g.bad <= 0.0 || g.p_good_to_bad <= 0.0),
        }
    }

    fn validate(&self, what: &str) {
        match self {
            FaultProcess::Off => {}
            FaultProcess::Iid(p) => {
                assert!(
                    (0.0..=1.0).contains(p),
                    "{what}: i.i.d. rate {p} outside [0,1]"
                )
            }
            FaultProcess::Ge(g) => g.validate(what),
        }
    }
}

/// Channel state for one [`FaultProcess`] (only Gilbert–Elliott chains
/// carry state; the others are memoryless).
#[derive(Clone, Copy, Debug, Default)]
struct ProcState {
    bad: bool,
}

impl ProcState {
    /// Advance the chain one unit and return the current event rate.
    fn step(&mut self, proc: &FaultProcess, rng: &mut Rng) -> f64 {
        match proc {
            FaultProcess::Off => 0.0,
            FaultProcess::Iid(p) => *p,
            FaultProcess::Ge(g) => {
                let flip = if self.bad {
                    g.p_bad_to_good
                } else {
                    g.p_good_to_bad
                };
                if rng.chance(flip) {
                    self.bad = !self.bad;
                }
                if self.bad {
                    g.bad
                } else {
                    g.good
                }
            }
        }
    }
}

/// A deterministic description of everything a channel may do to a
/// stream of units. Strict superset of the old `FaultSpec { loss, ber }`
/// pair, which it replaces.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Whole-unit loss process (per-unit rate).
    pub loss: FaultProcess,
    /// Bit-corruption process (per-**bit** rate while sampled).
    pub errors: FaultProcess,
    /// Per-unit probability that a surviving unit is delivered twice.
    pub duplication: f64,
    /// Per-unit probability that a surviving unit is displaced.
    pub reorder_probability: f64,
    /// Maximum displacement, in unit-times, of a reordered unit
    /// (uniform in `1..=span`). Bounded so delivery never starves.
    pub reorder_span: u32,
}

impl FaultPlan {
    /// The empty plan: nothing ever happens, and proving it costs no
    /// randomness.
    pub const NONE: FaultPlan = FaultPlan {
        loss: FaultProcess::Off,
        errors: FaultProcess::Off,
        duplication: 0.0,
        reorder_probability: 0.0,
        reorder_span: 0,
    };

    /// Only i.i.d. whole-unit loss (the old `FaultSpec::loss`).
    pub fn loss(p: f64) -> Self {
        FaultPlan {
            loss: FaultProcess::Iid(p),
            ..FaultPlan::NONE
        }
    }

    /// Only i.i.d. bit errors (the old `FaultSpec::ber`).
    pub fn ber(p: f64) -> Self {
        FaultPlan {
            errors: FaultProcess::Iid(p),
            ..FaultPlan::NONE
        }
    }

    /// The old two-knob `FaultSpec`: i.i.d. loss plus i.i.d. bit errors.
    pub fn iid(loss: f64, ber: f64) -> Self {
        FaultPlan {
            loss: FaultProcess::Iid(loss),
            errors: FaultProcess::Iid(ber),
            ..FaultPlan::NONE
        }
    }

    /// Bursty whole-unit loss driven by a Gilbert–Elliott chain.
    pub fn bursty_loss(g: GeParams) -> Self {
        FaultPlan {
            loss: FaultProcess::Ge(g),
            ..FaultPlan::NONE
        }
    }

    /// Add duplication to a plan.
    pub fn with_duplication(mut self, p: f64) -> Self {
        self.duplication = p;
        self
    }

    /// Add bounded reordering to a plan.
    pub fn with_reorder(mut self, p: f64, span: u32) -> Self {
        self.reorder_probability = p;
        self.reorder_span = span;
        self
    }

    /// True when no fault of any kind can ever fire. The injector's
    /// fast path keys off this.
    pub fn is_none(&self) -> bool {
        self.loss.is_off()
            && self.errors.is_off()
            && self.duplication <= 0.0
            && (self.reorder_probability <= 0.0 || self.reorder_span == 0)
    }

    /// Panic on out-of-range parameters (probabilities outside `[0,1]`).
    pub fn validate(&self) {
        self.loss.validate("loss");
        self.errors.validate("errors");
        assert!(
            (0.0..=1.0).contains(&self.duplication),
            "duplication {} outside [0,1]",
            self.duplication
        );
        assert!(
            (0.0..=1.0).contains(&self.reorder_probability),
            "reorder_probability {} outside [0,1]",
            self.reorder_probability
        );
    }
}

/// The fate of one transmitted unit, as decided by a [`FaultInjector`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnitFate {
    /// The unit never arrives. All other fields are then meaningless.
    pub lost: bool,
    /// A second copy of the unit arrives one unit-time after the first.
    pub duplicated: bool,
    /// Late delivery: the unit is displaced this many unit-times,
    /// letting up to that many successors overtake it. 0 = in order.
    pub displaced: u32,
    /// Bit positions inverted in flight (0 = first bit on the wire).
    pub flipped_bits: Vec<u64>,
}

impl UnitFate {
    /// Untouched delivery. Allocation-free.
    pub const CLEAN: UnitFate = UnitFate {
        lost: false,
        duplicated: false,
        displaced: 0,
        flipped_bits: Vec::new(),
    };

    const LOST: UnitFate = UnitFate {
        lost: true,
        duplicated: false,
        displaced: 0,
        flipped_bits: Vec::new(),
    };

    /// Did anything at all happen to this unit?
    pub fn is_clean(&self) -> bool {
        !self.lost && !self.duplicated && self.displaced == 0 && self.flipped_bits.is_empty()
    }
}

/// A seeded fault plan bound to its channel state and RNG stream:
/// feed it units, it hands back fates. Deterministic per seed.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: Rng,
    loss_state: ProcState,
    error_state: ProcState,
    units: u64,
    lost: u64,
    duplicated: u64,
    displaced: u64,
    flipped: u64,
}

impl FaultInjector {
    /// Bind a validated plan to an RNG stream.
    pub fn new(plan: FaultPlan, rng: Rng) -> Self {
        plan.validate();
        FaultInjector {
            plan,
            rng,
            loss_state: ProcState::default(),
            error_state: ProcState::default(),
            units: 0,
            lost: 0,
            duplicated: 0,
            displaced: 0,
            flipped: 0,
        }
    }

    /// Convenience: seed an injector directly.
    pub fn seeded(plan: FaultPlan, seed: u64) -> Self {
        FaultInjector::new(plan, Rng::new(seed))
    }

    /// Decide the fate of the next unit of `bits` bits.
    ///
    /// The loss and error chains each step once per unit (the channel
    /// evolves whether or not the unit survives); flip positions are
    /// drawn by geometric gap sampling, so rare BERs cost O(errors),
    /// not O(bits). With [`FaultPlan::NONE`] this draws zero random
    /// values and performs zero allocations.
    pub fn fate(&mut self, bits: u64) -> UnitFate {
        self.units += 1;
        if self.plan.is_none() {
            return UnitFate::CLEAN;
        }
        let loss_p = self.loss_state.step(&self.plan.loss, &mut self.rng);
        let error_p = self.error_state.step(&self.plan.errors, &mut self.rng);
        if self.rng.chance(loss_p) {
            self.lost += 1;
            return UnitFate::LOST;
        }
        let mut flipped = Vec::new();
        if error_p > 0.0 {
            let mut pos: u64 = 0;
            loop {
                let gap = self.rng.geometric(error_p);
                pos = match pos.checked_add(gap) {
                    Some(p) => p,
                    None => break,
                };
                if pos > bits {
                    break;
                }
                flipped.push(pos - 1);
            }
            self.flipped += flipped.len() as u64;
        }
        let duplicated = self.rng.chance(self.plan.duplication);
        if duplicated {
            self.duplicated += 1;
        }
        let displaced =
            if self.plan.reorder_span > 0 && self.rng.chance(self.plan.reorder_probability) {
                self.displaced += 1;
                1 + self.rng.below(self.plan.reorder_span as u64) as u32
            } else {
                0
            };
        UnitFate {
            lost: false,
            duplicated,
            displaced,
            flipped_bits: flipped,
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
    /// Units offered so far.
    pub fn units(&self) -> u64 {
        self.units
    }
    /// Units destroyed.
    pub fn lost(&self) -> u64 {
        self.lost
    }
    /// Units delivered twice.
    pub fn duplicated(&self) -> u64 {
        self.duplicated
    }
    /// Units delivered out of order.
    pub fn displaced(&self) -> u64 {
        self.displaced
    }
    /// Total bits inverted.
    pub fn total_flipped_bits(&self) -> u64 {
        self.flipped
    }
    /// Raw RNG values consumed — zero for the empty plan, forever.
    pub fn rng_draws(&self) -> u64 {
        self.rng.draws()
    }
}

/// A deterministic one-way propagation-delay model: a fixed base delay
/// plus optional seeded jitter, uniform in `[0, jitter]`.
///
/// This is the piece [`FaultPlan`] deliberately does not express: *when*
/// a surviving unit arrives, as opposed to *whether* and *how mangled*.
/// Closed-loop transports care because the feedback delay — not the
/// loss rate — sets the cost of every retransmission decision. The
/// model is two numbers so that a scenario (LAN, WAN, satellite) can be
/// named as a constant; the stateful, RNG-owning half is [`DelayLine`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DelayModel {
    /// Fixed one-way propagation delay applied to every unit.
    pub base: Duration,
    /// Maximum extra delay; each unit draws uniformly in `[0, jitter]`.
    /// `Duration::ZERO` disables jitter and costs no randomness.
    pub jitter: Duration,
}

impl DelayModel {
    /// Zero delay, zero jitter — a wire of no length.
    pub const NONE: DelayModel = DelayModel {
        base: Duration::ZERO,
        jitter: Duration::ZERO,
    };

    /// A fixed delay with no jitter.
    pub const fn fixed(base: Duration) -> Self {
        DelayModel {
            base,
            jitter: Duration::ZERO,
        }
    }

    /// A base delay with seeded uniform jitter on top.
    pub const fn jittered(base: Duration, jitter: Duration) -> Self {
        DelayModel { base, jitter }
    }

    /// True when every unit sees exactly `base` — the deterministic
    /// fast path that must consume no randomness.
    pub fn is_fixed(&self) -> bool {
        self.jitter == Duration::ZERO
    }

    /// Worst-case one-way delay under this model.
    pub fn max_delay(&self) -> Duration {
        self.base + self.jitter
    }
}

/// A [`DelayModel`] bound to its private RNG stream: feed it units, it
/// hands back one-way delays. Deterministic per seed, and the jitterless
/// model draws **zero** random values — the same contract
/// [`FaultInjector::fate`] honours for [`FaultPlan::NONE`].
#[derive(Clone, Debug)]
pub struct DelayLine {
    model: DelayModel,
    rng: Rng,
}

impl DelayLine {
    /// Bind a delay model to an RNG stream.
    pub fn new(model: DelayModel, rng: Rng) -> Self {
        DelayLine { model, rng }
    }

    /// Convenience: seed a delay line directly.
    pub fn seeded(model: DelayModel, seed: u64) -> Self {
        DelayLine::new(model, Rng::new(seed))
    }

    /// One-way delay for the next unit.
    pub fn delay(&mut self) -> Duration {
        if self.model.jitter == Duration::ZERO {
            return self.model.base;
        }
        let extra = self.rng.below(self.model.jitter.as_ps() + 1);
        self.model.base + Duration::from_ps(extra)
    }

    /// The model this line executes.
    pub fn model(&self) -> &DelayModel {
        &self.model
    }

    /// Raw RNG values consumed — zero for a jitterless model, forever.
    pub fn rng_draws(&self) -> u64 {
        self.rng.draws()
    }
}

/// Fault plan for a shared-bus model: per-grant arbitration stalls and
/// aborted-then-retried bursts. Carries its own seed so a config struct
/// can describe the whole fault scenario in one value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BusFaultPlan {
    /// Per-grant probability that arbitration stalls before the burst.
    pub stall_probability: f64,
    /// Extra bus cycles lost to one stall.
    pub stall_cycles: u32,
    /// Per-grant probability that the burst aborts and is retried once
    /// (the bus stays busy for both attempts).
    pub retry_probability: f64,
    /// Seed for the bus's private fault stream.
    pub seed: u64,
}

impl BusFaultPlan {
    /// No bus faults.
    pub const NONE: BusFaultPlan = BusFaultPlan {
        stall_probability: 0.0,
        stall_cycles: 0,
        retry_probability: 0.0,
        seed: 0,
    };

    /// True when no fault can fire (the seed is irrelevant then).
    pub fn is_none(&self) -> bool {
        (self.stall_probability <= 0.0 || self.stall_cycles == 0) && self.retry_probability <= 0.0
    }

    /// Panic on out-of-range probabilities.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.stall_probability),
            "stall_probability {} outside [0,1]",
            self.stall_probability
        );
        assert!(
            (0.0..=1.0).contains(&self.retry_probability),
            "retry_probability {} outside [0,1]",
            self.retry_probability
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_free() {
        let mut inj = FaultInjector::seeded(FaultPlan::NONE, 7);
        for _ in 0..10_000 {
            let fate = inj.fate(424);
            assert!(fate.is_clean());
        }
        assert_eq!(inj.rng_draws(), 0, "empty plan must consume no randomness");
        assert_eq!(inj.units(), 10_000);
        assert_eq!(inj.lost() + inj.duplicated() + inj.displaced(), 0);
    }

    #[test]
    fn iid_loss_rate_statistical() {
        let mut inj = FaultInjector::seeded(FaultPlan::loss(0.3), 11);
        let n = 20_000;
        let lost = (0..n).filter(|_| inj.fate(424).lost).count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate={rate}");
        assert_eq!(inj.lost(), lost as u64);
    }

    #[test]
    fn iid_ber_statistical() {
        let ber = 1e-3;
        let mut inj = FaultInjector::seeded(FaultPlan::ber(ber), 13);
        let bits = 424u64;
        let n = 50_000u64;
        let mut flips = 0u64;
        for _ in 0..n {
            let f = inj.fate(bits);
            for &b in &f.flipped_bits {
                assert!(b < bits);
            }
            flips += f.flipped_bits.len() as u64;
        }
        let observed = flips as f64 / (n * bits) as f64;
        assert!(
            (observed - ber).abs() / ber < 0.1,
            "observed BER {observed}"
        );
        assert_eq!(inj.total_flipped_bits(), flips);
    }

    #[test]
    fn ge_loss_is_bursty() {
        // Mean sojourns: 1000 units Good, 20 units Bad; loss-free Good,
        // lossy Bad. i.i.d. loss at the same average rate would almost
        // never produce back-to-back losses; the chain produces runs.
        let g = GeParams {
            p_good_to_bad: 0.001,
            p_bad_to_good: 0.05,
            good: 0.0,
            bad: 0.9,
        };
        let mut inj = FaultInjector::seeded(FaultPlan::bursty_loss(g), 17);
        let fates: Vec<bool> = (0..200_000).map(|_| inj.fate(424).lost).collect();
        let lost = fates.iter().filter(|&&l| l).count();
        assert!(lost > 500, "chain never entered Bad ({lost} losses)");
        let mut longest_run = 0usize;
        let mut run = 0usize;
        for &l in &fates {
            run = if l { run + 1 } else { 0 };
            longest_run = longest_run.max(run);
        }
        assert!(
            longest_run >= 5,
            "losses not bursty: longest run {longest_run}"
        );
    }

    #[test]
    fn duplication_and_reorder_fire_and_are_bounded() {
        let plan = FaultPlan::NONE.with_duplication(0.1).with_reorder(0.2, 4);
        assert!(!plan.is_none());
        let mut inj = FaultInjector::seeded(plan, 19);
        let n = 20_000;
        let mut dups = 0u64;
        let mut moved = 0u64;
        for _ in 0..n {
            let f = inj.fate(424);
            assert!(!f.lost);
            assert!(f.displaced <= 4);
            dups += f.duplicated as u64;
            moved += (f.displaced > 0) as u64;
        }
        let dup_rate = dups as f64 / n as f64;
        let re_rate = moved as f64 / n as f64;
        assert!((dup_rate - 0.1).abs() < 0.01, "dup rate {dup_rate}");
        assert!((re_rate - 0.2).abs() < 0.015, "reorder rate {re_rate}");
        assert_eq!(inj.duplicated(), dups);
        assert_eq!(inj.displaced(), moved);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let plan = FaultPlan::iid(0.05, 1e-4)
                .with_duplication(0.02)
                .with_reorder(0.03, 8);
            let mut inj = FaultInjector::seeded(plan, seed);
            (0..5_000).map(|_| inj.fate(424)).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn is_none_catches_degenerate_parameters() {
        assert!(FaultPlan::NONE.is_none());
        assert!(FaultPlan::loss(0.0).is_none());
        assert!(FaultPlan::ber(0.0).is_none());
        // Reorder with zero span can never displace anything.
        assert!(FaultPlan::NONE.with_reorder(0.5, 0).is_none());
        // A Ge chain that can't leave Good and is loss-free there is off.
        let g = GeParams {
            p_good_to_bad: 0.0,
            p_bad_to_good: 0.1,
            good: 0.0,
            bad: 1.0,
        };
        assert!(FaultPlan::bursty_loss(g).is_none());
        assert!(!FaultPlan::loss(0.1).is_none());
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn validate_rejects_bad_probability() {
        FaultInjector::seeded(FaultPlan::loss(1.5), 1);
    }

    #[test]
    fn fixed_delay_line_is_free() {
        let model = DelayModel::fixed(Duration::from_ms(270));
        assert!(model.is_fixed());
        let mut line = DelayLine::seeded(model, 3);
        for _ in 0..10_000 {
            assert_eq!(line.delay(), Duration::from_ms(270));
        }
        assert_eq!(
            line.rng_draws(),
            0,
            "jitterless line must cost no randomness"
        );
    }

    #[test]
    fn jittered_delay_bounded_and_deterministic() {
        let model = DelayModel::jittered(Duration::from_us(500), Duration::from_us(100));
        assert!(!model.is_fixed());
        assert_eq!(model.max_delay(), Duration::from_us(600));
        let run = |seed| {
            let mut line = DelayLine::seeded(model, seed);
            (0..5_000).map(|_| line.delay()).collect::<Vec<_>>()
        };
        let a = run(9);
        for &d in &a {
            assert!(d >= Duration::from_us(500) && d <= Duration::from_us(600));
        }
        // The jitter actually moves: not every delay is the base.
        assert!(a.iter().any(|&d| d != Duration::from_us(500)));
        assert_eq!(a, run(9));
        assert_ne!(a, run(10));
    }

    #[test]
    fn bus_plan_none_detection() {
        assert!(BusFaultPlan::NONE.is_none());
        let stalls = BusFaultPlan {
            stall_probability: 0.1,
            stall_cycles: 3,
            ..BusFaultPlan::NONE
        };
        assert!(!stalls.is_none());
        // Stalls of zero cycles are not faults.
        let free_stalls = BusFaultPlan {
            stall_probability: 0.1,
            stall_cycles: 0,
            ..BusFaultPlan::NONE
        };
        assert!(free_stalls.is_none());
    }
}
