//! Bounded FIFO with occupancy accounting and drop counting.
//!
//! Every queue in the NIC model — the cell FIFOs in front of the SONET
//! framer, the descriptor queues, the DMA request queues — is one of
//! these. Besides FIFO semantics it tracks exactly the statistics the
//! paper's buffer-sizing discussion needs: time-weighted mean occupancy,
//! peak occupancy, and how many entries were refused because the queue was
//! full (in hardware: an overrun).

use crate::stats::OccupancyTracker;
use crate::time::Time;
use std::collections::VecDeque;

/// A bounded FIFO queue instrumented with occupancy and drop statistics.
#[derive(Debug)]
pub struct BoundedFifo<T> {
    items: VecDeque<T>,
    capacity: usize,
    occupancy: OccupancyTracker,
    drops: u64,
    accepted: u64,
}

impl<T> BoundedFifo<T> {
    /// A FIFO holding at most `capacity` entries.
    ///
    /// # Panics
    /// If `capacity` is zero — a zero-length FIFO would silently drop
    /// everything, which is never what a pipeline model means.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "FIFO capacity must be positive");
        BoundedFifo {
            items: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            occupancy: OccupancyTracker::new(),
            drops: 0,
            accepted: 0,
        }
    }

    /// Attempt to enqueue at simulated time `now`.
    ///
    /// Returns `Err(item)` (handing the item back) if the queue is full,
    /// and counts the refusal as a drop. Callers that model *backpressure*
    /// should check [`Self::is_full`] first and stall instead of pushing.
    pub fn push(&mut self, now: Time, item: T) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            self.drops += 1;
            return Err(item);
        }
        self.items.push_back(item);
        self.accepted += 1;
        self.occupancy.set(now, self.items.len() as u64);
        Ok(())
    }

    /// Dequeue the oldest entry.
    pub fn pop(&mut self, now: Time) -> Option<T> {
        let item = self.items.pop_front()?;
        self.occupancy.set(now, self.items.len() as u64);
        Some(item)
    }

    /// Peek at the oldest entry without removing it.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.items.len()
    }
    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
    /// Whether the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }
    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
    /// Free slots remaining.
    pub fn free(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// Entries refused because the queue was full.
    pub fn drops(&self) -> u64 {
        self.drops
    }
    /// Entries successfully enqueued.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }
    /// Highest occupancy ever reached.
    pub fn peak_occupancy(&self) -> u64 {
        self.occupancy.peak()
    }
    /// Time-weighted mean occupancy over `[0, end]`.
    pub fn mean_occupancy(&self, end: Time) -> f64 {
        self.occupancy.mean(end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = BoundedFifo::new(4);
        let t = Time::ZERO;
        q.push(t, 1).unwrap();
        q.push(t, 2).unwrap();
        q.push(t, 3).unwrap();
        assert_eq!(q.pop(t), Some(1));
        assert_eq!(q.pop(t), Some(2));
        assert_eq!(q.pop(t), Some(3));
        assert_eq!(q.pop(t), None);
    }

    #[test]
    fn full_queue_refuses_and_counts() {
        let mut q = BoundedFifo::new(2);
        let t = Time::ZERO;
        q.push(t, 'a').unwrap();
        q.push(t, 'b').unwrap();
        assert!(q.is_full());
        assert_eq!(q.push(t, 'c'), Err('c'));
        assert_eq!(q.drops(), 1);
        assert_eq!(q.accepted(), 2);
    }

    #[test]
    fn occupancy_tracked() {
        let mut q = BoundedFifo::new(8);
        q.push(Time::ZERO, ()).unwrap();
        q.push(Time::ZERO, ()).unwrap();
        q.pop(Time::from_us(1));
        assert_eq!(q.peak_occupancy(), 2);
        // 2 for 1µs, then 1 for 1µs → mean 1.5 over 2µs
        let mean = q.mean_occupancy(Time::from_us(2));
        assert!((mean - 1.5).abs() < 1e-9, "mean={mean}");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = BoundedFifo::<u8>::new(0);
    }

    #[test]
    fn front_peeks() {
        let mut q = BoundedFifo::new(2);
        q.push(Time::ZERO, 9).unwrap();
        assert_eq!(q.front(), Some(&9));
        assert_eq!(q.len(), 1);
        assert_eq!(q.free(), 1);
    }
}
