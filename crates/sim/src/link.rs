//! A point-to-point link model with fault injection.
//!
//! The link is payload-agnostic: callers hand it a *size in bits* and it
//! answers with the unit's fate — when it finishes arriving at the far
//! end, and which bit positions (if any) were inverted in flight. The
//! caller owns the bytes and applies the corruption itself; this keeps the
//! link reusable for cells, frames, and whole SONET rows.
//!
//! Faults come from a seeded [`FaultPlan`] (see [`crate::faults`]):
//! whole-unit loss and bit errors — i.i.d. or bursty Gilbert–Elliott —
//! plus duplication and bounded reordering. Bit errors are drawn with
//! geometric gap sampling, so a BER of 1e-9 costs O(errors), not
//! O(bits). Reordering is expressed in time: a displaced unit arrives
//! late by a bounded number of unit-times, so successors overtake it. A
//! duplicated unit arrives again one unit-time after its first copy.
//!
//! The link serializes: a unit cannot start transmitting before the
//! previous one has finished (`next_free`). Propagation delay is added
//! after serialization, classic `tx_time + prop` semantics.

use crate::faults::{FaultInjector, FaultPlan};
use crate::rng::Rng;
use crate::stats::Histogram;
use crate::time::{Duration, Time};

/// The fate of one transmitted unit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinkDelivery {
    /// The unit arrives complete at `at`, with the listed bit positions
    /// (0 = first bit on the wire) inverted. An empty list is a clean
    /// delivery. If the fault plan duplicated the unit, a second
    /// identical copy arrives at `duplicate_at`.
    Delivered {
        at: Time,
        flipped_bits: Vec<u64>,
        duplicate_at: Option<Time>,
    },
    /// The unit was lost; it never arrives.
    Lost,
}

/// A serializing point-to-point link with rate, propagation delay and
/// fault injection.
#[derive(Debug)]
pub struct Link {
    bits_per_second: f64,
    propagation: Duration,
    injector: FaultInjector,
    next_free: Time,
    // Always-on telemetry: offered→delivered delay (queueing for the
    // line + serialization + propagation + displacement) per unit, in
    // picoseconds. Fixed-size and O(1) per send, so it stays on in the
    // zero-alloc fast path.
    delay_hist: Histogram,
}

impl Link {
    /// A link with the given line rate, one-way propagation delay, fault
    /// plan and RNG stream.
    pub fn new(bits_per_second: f64, propagation: Duration, plan: FaultPlan, rng: Rng) -> Self {
        assert!(bits_per_second > 0.0);
        Link {
            bits_per_second,
            propagation,
            injector: FaultInjector::new(plan, rng),
            next_free: Time::ZERO,
            delay_hist: Histogram::new(),
        }
    }

    /// Line rate in bits per second.
    pub fn bits_per_second(&self) -> f64 {
        self.bits_per_second
    }

    /// One-way propagation delay.
    pub fn propagation(&self) -> Duration {
        self.propagation
    }

    /// Earliest time the link can begin serializing another unit.
    pub fn next_free(&self) -> Time {
        self.next_free
    }

    /// Transmit a unit of `bits` bits, offered at time `now`.
    ///
    /// Serialization begins at `max(now, next_free)`; the base arrival
    /// time is serialization end plus propagation delay. The fault plan
    /// then decides the unit's fate: loss, corruption, a late
    /// (reordered) arrival displaced by whole unit-times, or a
    /// duplicate copy one unit-time behind the first.
    pub fn send(&mut self, now: Time, bits: u64) -> LinkDelivery {
        assert!(bits > 0, "cannot transmit a zero-length unit");
        let start = now.max(self.next_free);
        let ser = Duration::for_bits(bits, self.bits_per_second);
        self.next_free = start + ser;

        let fate = self.injector.fate(bits);
        if fate.lost {
            return LinkDelivery::Lost;
        }
        let at = self.next_free + self.propagation + ser * fate.displaced as u64;
        self.delay_hist.record(at.saturating_since(now).as_ps());
        LinkDelivery::Delivered {
            at,
            duplicate_at: fate.duplicated.then(|| at + ser),
            flipped_bits: fate.flipped_bits,
        }
    }

    /// Transmit a batch of equal-size units back to back, offered at
    /// `now`, appending one [`LinkDelivery`] per unit to `out` in offer
    /// order.
    ///
    /// Semantically identical to calling [`Link::send`] in a loop — the
    /// units still serialize one after another and each draws its own
    /// fate — but lets burst-oriented callers move a whole cell batch
    /// across the link in one call without an intermediate `Vec` per
    /// cell.
    pub fn send_burst(
        &mut self,
        now: Time,
        bits_per_unit: u64,
        units: usize,
        out: &mut Vec<LinkDelivery>,
    ) {
        out.reserve(units);
        for _ in 0..units {
            out.push(self.send(now, bits_per_unit));
        }
    }

    /// Units offered to the link so far.
    pub fn sent_units(&self) -> u64 {
        self.injector.units()
    }
    /// Units the fault plan destroyed.
    pub fn lost_units(&self) -> u64 {
        self.injector.lost()
    }
    /// Units the fault plan delivered twice.
    pub fn duplicated_units(&self) -> u64 {
        self.injector.duplicated()
    }
    /// Units the fault plan delivered out of order.
    pub fn reordered_units(&self) -> u64 {
        self.injector.displaced()
    }
    /// Total bits the fault plan inverted.
    pub fn total_flipped_bits(&self) -> u64 {
        self.injector.total_flipped_bits()
    }
    /// Raw RNG values the fault plan has consumed (zero when the plan
    /// is [`FaultPlan::NONE`] — the faultless fast path is free).
    pub fn rng_draws(&self) -> u64 {
        self.injector.rng_draws()
    }
    /// Offered→delivered delay distribution of every unit the link has
    /// delivered (picoseconds): the queue-for-the-line tail the mean
    /// utilization numbers hide.
    pub fn delay_hist(&self) -> &Histogram {
        &self.delay_hist
    }
}

/// Apply a list of flipped bit positions (as returned by
/// [`Link::send`]) to a byte buffer, MSB-first within each byte —
/// matching the on-the-wire bit order of ATM/SONET.
pub fn apply_bit_errors(buf: &mut [u8], flipped_bits: &[u64]) {
    for &pos in flipped_bits {
        let byte = (pos / 8) as usize;
        if byte < buf.len() {
            buf[byte] ^= 0x80 >> (pos % 8);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(bps: f64, plan: FaultPlan) -> Link {
        Link::new(bps, Duration::from_us(10), plan, Rng::new(1))
    }

    #[test]
    fn clean_delivery_timing() {
        let mut l = mk(1e9, FaultPlan::NONE); // 1 Gb/s
        match l.send(Time::ZERO, 8000) {
            LinkDelivery::Delivered {
                at,
                flipped_bits,
                duplicate_at,
            } => {
                // 8000 bits at 1 Gb/s = 8 µs + 10 µs propagation.
                assert_eq!(at, Time::from_us(18));
                assert!(flipped_bits.is_empty());
                assert!(duplicate_at.is_none());
            }
            LinkDelivery::Lost => panic!("should not lose"),
        }
    }

    #[test]
    fn faultless_link_draws_no_randomness() {
        let mut l = mk(1e9, FaultPlan::NONE);
        for i in 0..1000 {
            l.send(Time::from_us(i * 10), 424);
        }
        assert_eq!(l.rng_draws(), 0);
        assert_eq!(l.sent_units(), 1000);
    }

    #[test]
    fn delay_hist_sees_queueing() {
        let mut l = mk(1e9, FaultPlan::NONE);
        // Two back-to-back 8000-bit units offered at t=0: the first
        // waits 0, the second queues 8 µs behind it.
        l.send(Time::ZERO, 8000);
        l.send(Time::ZERO, 8000);
        let h = l.delay_hist();
        assert_eq!(h.count(), 2);
        // First delivery: 18 µs; second: 26 µs — the exact max shows
        // the queueing tail the mean hides.
        assert_eq!(h.max(), Duration::from_us(26).as_ps());
        assert!(h.quantile(0.5) >= Duration::from_us(18).as_ps());
    }

    #[test]
    fn lost_units_record_no_delay() {
        let mut l = mk(1e9, FaultPlan::loss(1.0));
        l.send(Time::ZERO, 424);
        assert_eq!(l.delay_hist().count(), 0);
    }

    #[test]
    fn serialization_backpressure() {
        let mut l = mk(1e9, FaultPlan::NONE);
        l.send(Time::ZERO, 8000); // occupies link until 8 µs
        match l.send(Time::from_us(1), 8000) {
            LinkDelivery::Delivered { at, .. } => {
                // Starts at 8 µs, ser 8 µs, prop 10 µs.
                assert_eq!(at, Time::from_us(26));
            }
            _ => panic!(),
        }
        assert_eq!(l.next_free(), Time::from_us(16));
    }

    #[test]
    fn loss_rate_statistical() {
        let mut l = mk(1e9, FaultPlan::loss(0.3));
        let n = 20_000;
        let mut lost = 0;
        let mut t = Time::ZERO;
        for _ in 0..n {
            if matches!(l.send(t, 424), LinkDelivery::Lost) {
                lost += 1;
            }
            t = l.next_free();
        }
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate={rate}");
        assert_eq!(l.lost_units(), lost);
    }

    #[test]
    fn ber_statistical() {
        let ber = 1e-3;
        let mut l = mk(1e9, FaultPlan::ber(ber));
        let bits_per_unit = 424;
        let n = 50_000u64;
        let mut flips = 0u64;
        let mut t = Time::ZERO;
        for _ in 0..n {
            if let LinkDelivery::Delivered { flipped_bits, .. } = l.send(t, bits_per_unit) {
                for &b in &flipped_bits {
                    assert!(b < bits_per_unit);
                }
                flips += flipped_bits.len() as u64;
            }
            t = l.next_free();
        }
        let observed = flips as f64 / (n * bits_per_unit) as f64;
        assert!(
            (observed - ber).abs() / ber < 0.1,
            "observed BER {observed} vs {ber}"
        );
    }

    #[test]
    fn duplicates_arrive_one_unit_later() {
        let mut l = mk(1e9, FaultPlan::NONE.with_duplication(1.0));
        match l.send(Time::ZERO, 8000) {
            LinkDelivery::Delivered {
                at, duplicate_at, ..
            } => {
                assert_eq!(at, Time::from_us(18));
                assert_eq!(duplicate_at, Some(Time::from_us(26)));
            }
            _ => panic!(),
        }
        assert_eq!(l.duplicated_units(), 1);
    }

    #[test]
    fn reordered_units_arrive_late_but_bounded() {
        let span = 6u32;
        let mut l = mk(1e9, FaultPlan::NONE.with_reorder(1.0, span));
        let ser = Duration::for_bits(8000, 1e9);
        let mut t = Time::ZERO;
        for _ in 0..200 {
            match l.send(t, 8000) {
                LinkDelivery::Delivered { at, .. } => {
                    let base = l.next_free() + l.propagation();
                    let late = at.saturating_since(base);
                    assert!(late >= ser, "every unit must be displaced here");
                    assert!(late <= ser * span as u64, "displacement beyond span");
                }
                _ => panic!(),
            }
            t = l.next_free();
        }
        assert_eq!(l.reordered_units(), 200);
    }

    #[test]
    fn bursty_plan_produces_loss_runs() {
        let g = crate::faults::GeParams {
            p_good_to_bad: 0.002,
            p_bad_to_good: 0.05,
            good: 0.0,
            bad: 1.0,
        };
        let mut l = mk(1e9, FaultPlan::bursty_loss(g));
        let mut t = Time::ZERO;
        let mut longest = 0u32;
        let mut run = 0u32;
        for _ in 0..100_000 {
            if matches!(l.send(t, 424), LinkDelivery::Lost) {
                run += 1;
                longest = longest.max(run);
            } else {
                run = 0;
            }
            t = l.next_free();
        }
        assert!(l.lost_units() > 100, "chain never went Bad");
        assert!(longest >= 5, "losses not bursty (longest run {longest})");
    }

    #[test]
    fn apply_bit_errors_msb_first() {
        let mut buf = [0u8; 2];
        apply_bit_errors(&mut buf, &[0, 8, 15]);
        assert_eq!(buf, [0x80, 0x81]);
        // Out-of-range positions are ignored.
        apply_bit_errors(&mut buf, &[100]);
        assert_eq!(buf, [0x80, 0x81]);
    }

    #[test]
    fn send_burst_matches_serial_sends() {
        let serial = {
            let mut l = Link::new(
                1e9,
                Duration::from_us(10),
                FaultPlan::loss(0.2),
                Rng::new(7),
            );
            (0..50).map(|_| l.send(Time::ZERO, 424)).collect::<Vec<_>>()
        };
        let mut l = Link::new(
            1e9,
            Duration::from_us(10),
            FaultPlan::loss(0.2),
            Rng::new(7),
        );
        let mut burst = Vec::new();
        l.send_burst(Time::ZERO, 424, 50, &mut burst);
        assert_eq!(burst, serial);
        assert_eq!(l.sent_units(), 50);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut l = Link::new(1e9, Duration::ZERO, FaultPlan::loss(0.5), Rng::new(99));
            (0..100)
                .map(|i| matches!(l.send(Time::from_us(i * 10), 424), LinkDelivery::Lost))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
