//! A point-to-point link model with fault injection.
//!
//! The link is payload-agnostic: callers hand it a *size in bits* and it
//! answers with the unit's fate — when it finishes arriving at the far
//! end, and which bit positions (if any) were inverted in flight. The
//! caller owns the bytes and applies the corruption itself; this keeps the
//! link reusable for cells, frames, and whole SONET rows.
//!
//! Fault injection follows the smoltcp example convention: independent
//! per-unit loss probability plus a bit-error rate. Bit errors are drawn
//! with geometric gap sampling, so a BER of 1e-9 costs O(errors), not
//! O(bits).
//!
//! The link serializes: a unit cannot start transmitting before the
//! previous one has finished (`next_free`). Propagation delay is added
//! after serialization, classic `tx_time + prop` semantics.

use crate::rng::Rng;
use crate::time::{Duration, Time};

/// Fault-injection parameters for a [`Link`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultSpec {
    /// Probability that a transmitted unit is lost entirely (e.g. a cell
    /// discarded by a congested switch on the path this link abstracts).
    pub loss_probability: f64,
    /// Independent probability that any single bit is inverted in flight.
    pub bit_error_rate: f64,
}

impl FaultSpec {
    /// No faults at all.
    pub const NONE: FaultSpec = FaultSpec {
        loss_probability: 0.0,
        bit_error_rate: 0.0,
    };

    /// Only whole-unit loss.
    pub fn loss(p: f64) -> Self {
        FaultSpec {
            loss_probability: p,
            bit_error_rate: 0.0,
        }
    }

    /// Only bit errors.
    pub fn ber(p: f64) -> Self {
        FaultSpec {
            loss_probability: 0.0,
            bit_error_rate: p,
        }
    }
}

/// The fate of one transmitted unit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinkDelivery {
    /// The unit arrives complete at `at`, with the listed bit positions
    /// (0 = first bit on the wire) inverted. An empty list is a clean
    /// delivery.
    Delivered { at: Time, flipped_bits: Vec<u64> },
    /// The unit was lost; it never arrives.
    Lost,
}

/// A serializing point-to-point link with rate, propagation delay and
/// fault injection.
#[derive(Debug)]
pub struct Link {
    bits_per_second: f64,
    propagation: Duration,
    faults: FaultSpec,
    rng: Rng,
    next_free: Time,
    sent_units: u64,
    lost_units: u64,
    flipped_bits: u64,
}

impl Link {
    /// A link with the given line rate, one-way propagation delay, fault
    /// model and RNG stream.
    pub fn new(bits_per_second: f64, propagation: Duration, faults: FaultSpec, rng: Rng) -> Self {
        assert!(bits_per_second > 0.0);
        assert!((0.0..=1.0).contains(&faults.loss_probability));
        assert!((0.0..=1.0).contains(&faults.bit_error_rate));
        Link {
            bits_per_second,
            propagation,
            faults,
            rng,
            next_free: Time::ZERO,
            sent_units: 0,
            lost_units: 0,
            flipped_bits: 0,
        }
    }

    /// Line rate in bits per second.
    pub fn bits_per_second(&self) -> f64 {
        self.bits_per_second
    }

    /// One-way propagation delay.
    pub fn propagation(&self) -> Duration {
        self.propagation
    }

    /// Earliest time the link can begin serializing another unit.
    pub fn next_free(&self) -> Time {
        self.next_free
    }

    /// Transmit a unit of `bits` bits, offered at time `now`.
    ///
    /// Serialization begins at `max(now, next_free)`; the returned arrival
    /// time is serialization end plus propagation delay. Loss and bit
    /// errors are then drawn from the fault model.
    pub fn send(&mut self, now: Time, bits: u64) -> LinkDelivery {
        assert!(bits > 0, "cannot transmit a zero-length unit");
        let start = now.max(self.next_free);
        let ser = Duration::for_bits(bits, self.bits_per_second);
        self.next_free = start + ser;
        self.sent_units += 1;

        if self.rng.chance(self.faults.loss_probability) {
            self.lost_units += 1;
            return LinkDelivery::Lost;
        }

        let mut flipped = Vec::new();
        if self.faults.bit_error_rate > 0.0 {
            // Geometric gap sampling across the unit's bits.
            let mut pos: u64 = 0;
            loop {
                let gap = self.rng.geometric(self.faults.bit_error_rate);
                pos = match pos.checked_add(gap) {
                    Some(p) => p,
                    None => break,
                };
                if pos > bits {
                    break;
                }
                flipped.push(pos - 1);
            }
            self.flipped_bits += flipped.len() as u64;
        }

        LinkDelivery::Delivered {
            at: self.next_free + self.propagation,
            flipped_bits: flipped,
        }
    }

    /// Units offered to the link so far.
    pub fn sent_units(&self) -> u64 {
        self.sent_units
    }
    /// Units the fault model destroyed.
    pub fn lost_units(&self) -> u64 {
        self.lost_units
    }
    /// Total bits the fault model inverted.
    pub fn total_flipped_bits(&self) -> u64 {
        self.flipped_bits
    }
}

/// Apply a list of flipped bit positions (as returned by
/// [`Link::send`]) to a byte buffer, MSB-first within each byte —
/// matching the on-the-wire bit order of ATM/SONET.
pub fn apply_bit_errors(buf: &mut [u8], flipped_bits: &[u64]) {
    for &pos in flipped_bits {
        let byte = (pos / 8) as usize;
        if byte < buf.len() {
            buf[byte] ^= 0x80 >> (pos % 8);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(bps: f64, faults: FaultSpec) -> Link {
        Link::new(bps, Duration::from_us(10), faults, Rng::new(1))
    }

    #[test]
    fn clean_delivery_timing() {
        let mut l = mk(1e9, FaultSpec::NONE); // 1 Gb/s
        match l.send(Time::ZERO, 8000) {
            LinkDelivery::Delivered { at, flipped_bits } => {
                // 8000 bits at 1 Gb/s = 8 µs + 10 µs propagation.
                assert_eq!(at, Time::from_us(18));
                assert!(flipped_bits.is_empty());
            }
            LinkDelivery::Lost => panic!("should not lose"),
        }
    }

    #[test]
    fn serialization_backpressure() {
        let mut l = mk(1e9, FaultSpec::NONE);
        l.send(Time::ZERO, 8000); // occupies link until 8 µs
        match l.send(Time::from_us(1), 8000) {
            LinkDelivery::Delivered { at, .. } => {
                // Starts at 8 µs, ser 8 µs, prop 10 µs.
                assert_eq!(at, Time::from_us(26));
            }
            _ => panic!(),
        }
        assert_eq!(l.next_free(), Time::from_us(16));
    }

    #[test]
    fn loss_rate_statistical() {
        let mut l = mk(1e9, FaultSpec::loss(0.3));
        let n = 20_000;
        let mut lost = 0;
        let mut t = Time::ZERO;
        for _ in 0..n {
            if matches!(l.send(t, 424), LinkDelivery::Lost) {
                lost += 1;
            }
            t = l.next_free();
        }
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate={rate}");
        assert_eq!(l.lost_units(), lost);
    }

    #[test]
    fn ber_statistical() {
        let ber = 1e-3;
        let mut l = mk(1e9, FaultSpec::ber(ber));
        let bits_per_unit = 424;
        let n = 50_000u64;
        let mut flips = 0u64;
        let mut t = Time::ZERO;
        for _ in 0..n {
            if let LinkDelivery::Delivered { flipped_bits, .. } = l.send(t, bits_per_unit) {
                for &b in &flipped_bits {
                    assert!(b < bits_per_unit);
                }
                flips += flipped_bits.len() as u64;
            }
            t = l.next_free();
        }
        let observed = flips as f64 / (n * bits_per_unit) as f64;
        assert!(
            (observed - ber).abs() / ber < 0.1,
            "observed BER {observed} vs {ber}"
        );
    }

    #[test]
    fn apply_bit_errors_msb_first() {
        let mut buf = [0u8; 2];
        apply_bit_errors(&mut buf, &[0, 8, 15]);
        assert_eq!(buf, [0x80, 0x81]);
        // Out-of-range positions are ignored.
        apply_bit_errors(&mut buf, &[100]);
        assert_eq!(buf, [0x80, 0x81]);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut l = Link::new(1e9, Duration::ZERO, FaultSpec::loss(0.5), Rng::new(99));
            (0..100)
                .map(|i| matches!(l.send(Time::from_us(i * 10), 424), LinkDelivery::Lost))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
