//! Property-based tests for the simulation kernel.

use hni_sim::{BoundedFifo, Duration, EventQueue, Histogram, OccupancyTracker, Rng, Summary, Time};
use proptest::prelude::*;

proptest! {
    /// The event queue delivers in non-decreasing time order, FIFO
    /// within equal timestamps, for any schedule.
    #[test]
    fn event_queue_total_order(times in proptest::collection::vec(0u64..1000, 1..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Time::from_ns(t), (t, i));
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some((at, (t, i))) = q.pop() {
            prop_assert_eq!(at, Time::from_ns(t));
            if let Some((lt, li)) = last {
                prop_assert!(t > lt || (t == lt && i > li), "order violated");
            }
            last = Some((t, i));
        }
        prop_assert_eq!(q.delivered(), times.len() as u64);
    }

    /// Histogram quantiles bracket the true values within the log₂
    /// bucket guarantee, and the mean is exact.
    #[test]
    fn histogram_bounds(samples in proptest::collection::vec(1u64..1_000_000, 1..500)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let true_mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        prop_assert!((h.mean() - true_mean).abs() < 1e-6);
        for q in [0.0, 0.5, 0.9, 1.0] {
            let est = h.quantile(q);
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let truth = sorted[rank - 1];
            prop_assert!(est >= truth, "quantile {q}: est {est} < truth {truth}");
            prop_assert!(est < truth.saturating_mul(2).max(2), "quantile {q}: est {est} ≥ 2×{truth}");
        }
    }

    /// Summary mean/min/max agree with naïve computation.
    #[test]
    fn summary_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 1..300)) {
        let mut s = Summary::new();
        for &x in &xs {
            s.record(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert_eq!(s.min(), xs.iter().cloned().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(s.max(), xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    }

    /// FIFO never exceeds capacity, preserves order, counts drops
    /// exactly — against a reference model.
    #[test]
    fn fifo_reference_model(cap in 1usize..32,
                            ops in proptest::collection::vec(any::<bool>(), 1..400)) {
        let mut fifo = BoundedFifo::new(cap);
        let mut reference: Vec<u32> = Vec::new();
        let mut next = 0u32;
        let mut drops = 0u64;
        let mut popped_fifo = Vec::new();
        let mut popped_ref = Vec::new();
        for push in ops {
            if push {
                if reference.len() < cap {
                    reference.push(next);
                    prop_assert!(fifo.push(Time::ZERO, next).is_ok());
                } else {
                    drops += 1;
                    prop_assert!(fifo.push(Time::ZERO, next).is_err());
                }
                next += 1;
            } else {
                let a = fifo.pop(Time::ZERO);
                let b = if reference.is_empty() { None } else { Some(reference.remove(0)) };
                prop_assert_eq!(a, b);
                if let Some(v) = a { popped_fifo.push(v); }
                if let Some(v) = b { popped_ref.push(v); }
            }
            prop_assert!(fifo.len() <= cap);
            prop_assert_eq!(fifo.len(), reference.len());
        }
        prop_assert_eq!(fifo.drops(), drops);
        prop_assert_eq!(popped_fifo, popped_ref);
    }

    /// Occupancy tracker's time-weighted mean equals a direct integral.
    #[test]
    fn occupancy_matches_integral(levels in proptest::collection::vec((0u64..100, 1u64..1000), 1..50)) {
        let mut o = OccupancyTracker::new();
        let mut t = Time::ZERO;
        let mut area = 0u128;
        for &(level, dwell_ns) in &levels {
            o.set(t, level);
            area += level as u128 * (dwell_ns as u128 * 1000);
            t += Duration::from_ns(dwell_ns);
        }
        o.set(t, 0);
        let mean = o.mean(t);
        let expected = area as f64 / t.as_ps() as f64;
        prop_assert!((mean - expected).abs() < 1e-9 * (1.0 + expected), "{mean} vs {expected}");
    }

    /// Rng::below is always in range; forked streams never rewind.
    #[test]
    fn rng_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut r = Rng::new(seed);
        for _ in 0..100 {
            prop_assert!(r.below(bound) < bound);
        }
    }

    /// Duration::for_bits is monotone in bits and antitone in rate.
    #[test]
    fn for_bits_monotone(bits in 1u64..1_000_000, rate_mbps in 1f64..1000.0) {
        let d1 = Duration::for_bits(bits, rate_mbps * 1e6);
        let d2 = Duration::for_bits(bits + 1, rate_mbps * 1e6);
        let d3 = Duration::for_bits(bits, rate_mbps * 2e6);
        prop_assert!(d2 >= d1);
        prop_assert!(d3 <= d1);
    }
}
