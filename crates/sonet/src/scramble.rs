//! The frame-synchronous section scrambler, 1 + x⁶ + x⁷ (GR-253 §5.3).
//!
//! Unlike the self-synchronising cell-payload scrambler, this one is a
//! free-running PRBS of period 127, reset to all-ones at the first octet
//! following the last framing/J0 octet of each frame (i.e. everything
//! except the first row of section overhead is scrambled). Because it is
//! frame-synchronous, transmitter and receiver apply the *same* sequence
//! — scrambling and descrambling are the same operation.

/// Frame-synchronous scrambler/descrambler.
#[derive(Clone, Debug)]
pub struct FrameScrambler {
    state: u8, // 7-bit LFSR state
}

impl Default for FrameScrambler {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameScrambler {
    /// A scrambler ready for the start of a frame's scrambled region
    /// (state = all ones).
    pub fn new() -> Self {
        FrameScrambler { state: 0x7F }
    }

    /// Reset to the all-ones state (do this at each frame boundary).
    pub fn reset(&mut self) {
        self.state = 0x7F;
    }

    /// Next octet of the scrambling sequence.
    #[inline]
    pub fn next_octet(&mut self) -> u8 {
        let mut out = 0u8;
        for _ in 0..8 {
            // Output bit is the MSB of the state; feedback x⁷+x⁶+1:
            // new bit = bit6 ⊕ bit5 (0-indexed from LSB of 7-bit state).
            let bit = (self.state >> 6) & 1;
            out = (out << 1) | bit;
            let fb = ((self.state >> 6) ^ (self.state >> 5)) & 1;
            self.state = ((self.state << 1) | fb) & 0x7F;
        }
        out
    }

    /// Scramble (or descramble — same operation) a buffer in place.
    pub fn apply(&mut self, buf: &mut [u8]) {
        for b in buf {
            *b ^= self.next_octet();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn involution() {
        let original: Vec<u8> = (0..300).map(|i| (i * 89 % 256) as u8).collect();
        let mut buf = original.clone();
        let mut s = FrameScrambler::new();
        s.apply(&mut buf);
        assert_ne!(buf, original);
        let mut d = FrameScrambler::new();
        d.apply(&mut buf);
        assert_eq!(buf, original);
    }

    #[test]
    fn sequence_period_127() {
        let mut s = FrameScrambler::new();
        // Collect 127 bits ×2 and verify periodicity at the bit level:
        // octet sequence repeats every 127 octets only if 127 | positions;
        // easier: state returns to 0x7F after 127 bit-clocks.
        let mut bits = Vec::new();
        for _ in 0..254 {
            let bit = (s.state >> 6) & 1;
            bits.push(bit);
            let fb = ((s.state >> 6) ^ (s.state >> 5)) & 1;
            s.state = ((s.state << 1) | fb) & 0x7F;
        }
        assert_eq!(&bits[..127], &bits[127..254]);
        // Maximal length: all 127 nonzero states visited → a run of 7 ones
        // appears exactly once per period.
        let ones: u32 = bits[..127].iter().map(|&b| b as u32).sum();
        assert_eq!(ones, 64); // m-sequence property: 2^(n-1) ones
    }

    #[test]
    fn first_octet_known_value() {
        // State all-ones: first 8 output bits are 1111111 then the 8th
        // from feedback; the canonical first scrambler octet is 0xFE.
        let mut s = FrameScrambler::new();
        assert_eq!(s.next_octet(), 0xFE);
    }

    #[test]
    fn reset_restarts_sequence() {
        let mut s = FrameScrambler::new();
        let a = s.next_octet();
        s.next_octet();
        s.reset();
        assert_eq!(s.next_octet(), a);
    }
}
