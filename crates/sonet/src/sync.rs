//! Receiver frame alignment: finding the 125 µs frame boundary in a raw
//! octet stream by hunting for the A1…A1 A2…A2 pattern.
//!
//! Mirrors the cell-delineation philosophy one layer down: HUNT scans
//! octet-by-octet for the framing pattern; PRESYNC demands the pattern
//! repeat at exactly one frame spacing before trusting it; SYNC slices
//! frames and tolerates occasional pattern misses (the pattern octets are
//! not error-protected) up to a loss-of-frame threshold.
//!
//! This model is octet-aligned (a real SONET receiver also resolves bit
//! alignment; our links deliver octets, so bit-phase is out of scope).

use crate::frame::{A1, A2};
use crate::rates::LineRate;

/// Consecutive confirmed frames in PRESYNC before declaring SYNC.
pub const PRESYNC_CONFIRM: u32 = 2;
/// Consecutive missed patterns in SYNC before declaring loss of frame.
pub const LOF_THRESHOLD: u32 = 4;

/// Frame alignment state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameSyncState {
    /// Scanning for the framing pattern.
    Hunt,
    /// Pattern found once; confirming at frame spacing.
    Presync {
        /// Confirmations so far.
        confirmed: u32,
    },
    /// In frame. `misses` is the current run of absent patterns.
    Sync {
        /// Consecutive frames whose pattern octets did not match.
        misses: u32,
    },
}

/// Octet-stream frame aligner. Feed arbitrary chunks; complete aligned
/// frames come out.
pub struct FrameAligner {
    rate: LineRate,
    state: FrameSyncState,
    buf: Vec<u8>,
    acquisitions: u64,
    losses: u64,
    frames_emitted: u64,
}

impl FrameAligner {
    /// An aligner for `rate`, in HUNT.
    pub fn new(rate: LineRate) -> Self {
        FrameAligner {
            rate,
            state: FrameSyncState::Hunt,
            buf: Vec::new(),
            acquisitions: 0,
            losses: 0,
            frames_emitted: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> FrameSyncState {
        self.state
    }
    /// Whether frame alignment is established.
    pub fn is_synced(&self) -> bool {
        matches!(self.state, FrameSyncState::Sync { .. })
    }
    /// Times alignment has been acquired.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }
    /// Times alignment has been lost.
    pub fn losses(&self) -> u64 {
        self.losses
    }
    /// Frames emitted.
    pub fn frames_emitted(&self) -> u64 {
        self.frames_emitted
    }

    fn pattern_at(&self, pos: usize) -> bool {
        let n = self.rate.sts_n();
        if pos + 2 * n > self.buf.len() {
            return false;
        }
        self.buf[pos..pos + n].iter().all(|&b| b == A1)
            && self.buf[pos + n..pos + 2 * n].iter().all(|&b| b == A2)
    }

    /// Feed octets; complete frames (each exactly one frame long,
    /// starting at the first A1) are appended to `out`.
    pub fn push(&mut self, bytes: &[u8], out: &mut Vec<Vec<u8>>) {
        self.buf.extend_from_slice(bytes);
        loop {
            match self.state {
                FrameSyncState::Hunt => {
                    let n = self.rate.sts_n();
                    // Scan for the pattern.
                    let mut found = None;
                    if self.buf.len() >= 2 * n {
                        for pos in 0..=(self.buf.len() - 2 * n) {
                            if self.pattern_at(pos) {
                                found = Some(pos);
                                break;
                            }
                        }
                    }
                    match found {
                        Some(pos) => {
                            self.buf.drain(..pos);
                            self.state = FrameSyncState::Presync { confirmed: 0 };
                        }
                        None => {
                            // Keep only a tail that could prefix a pattern.
                            let keep = (2 * n).saturating_sub(1).min(self.buf.len());
                            let cut = self.buf.len() - keep;
                            self.buf.drain(..cut);
                            return;
                        }
                    }
                }
                FrameSyncState::Presync { confirmed } => {
                    let flen = self.rate.frame_octets();
                    // Need the candidate frame plus the next pattern.
                    if self.buf.len() < flen + 2 * self.rate.sts_n() {
                        return;
                    }
                    if self.pattern_at(flen) {
                        let confirmed = confirmed + 1;
                        // The candidate frame is consumed without delivery
                        // (alignment not yet trusted).
                        self.buf.drain(..flen);
                        if confirmed >= PRESYNC_CONFIRM {
                            self.state = FrameSyncState::Sync { misses: 0 };
                            self.acquisitions += 1;
                        } else {
                            self.state = FrameSyncState::Presync { confirmed };
                        }
                    } else {
                        // False alignment: slip one octet and re-hunt.
                        self.buf.drain(..1);
                        self.state = FrameSyncState::Hunt;
                    }
                }
                FrameSyncState::Sync { misses } => {
                    let flen = self.rate.frame_octets();
                    if self.buf.len() < flen {
                        return;
                    }
                    let ok = self.pattern_at(0);
                    let frame: Vec<u8> = self.buf.drain(..flen).collect();
                    if ok {
                        self.state = FrameSyncState::Sync { misses: 0 };
                        self.frames_emitted += 1;
                        out.push(frame);
                    } else {
                        let misses = misses + 1;
                        if misses >= LOF_THRESHOLD {
                            self.losses += 1;
                            self.state = FrameSyncState::Hunt;
                        } else {
                            // Tolerate the miss: slice on last known
                            // alignment and still deliver.
                            self.state = FrameSyncState::Sync { misses };
                            self.frames_emitted += 1;
                            out.push(frame);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameBuilder;

    fn frames(rate: LineRate, count: usize) -> Vec<Vec<u8>> {
        let mut b = FrameBuilder::new(rate);
        (0..count)
            .map(|i| {
                let payload: Vec<u8> = (0..rate.payload_octets_per_frame())
                    .map(|j| ((i * 7 + j) % 256) as u8)
                    .collect();
                b.build(&payload, 0)
            })
            .collect()
    }

    #[test]
    fn aligns_on_clean_stream() {
        let rate = LineRate::Oc3;
        let fs = frames(rate, 8);
        let stream: Vec<u8> = fs.iter().flatten().copied().collect();
        let mut a = FrameAligner::new(rate);
        let mut out = Vec::new();
        a.push(&stream, &mut out);
        assert!(a.is_synced());
        // Each PRESYNC confirmation peeks the NEXT frame's pattern and
        // consumes the current frame, so exactly PRESYNC_CONFIRM frames
        // are eaten; frames 2..7 delivered.
        assert_eq!(out.len(), 8 - PRESYNC_CONFIRM as usize);
        assert_eq!(out[0], fs[PRESYNC_CONFIRM as usize]);
    }

    #[test]
    fn aligns_from_mid_stream_offset() {
        let rate = LineRate::Oc3;
        let fs = frames(rate, 10);
        let mut stream: Vec<u8> = fs.iter().flatten().copied().collect();
        // Chop 1000 octets off the front: we start mid-frame.
        stream.drain(..1000);
        let mut a = FrameAligner::new(rate);
        let mut out = Vec::new();
        a.push(&stream, &mut out);
        assert!(a.is_synced());
        assert!(!out.is_empty());
        // Every delivered frame must start with the pattern.
        for f in &out {
            assert_eq!(&f[..3], &[A1, A1, A1]);
            assert_eq!(&f[3..6], &[A2, A2, A2]);
        }
    }

    #[test]
    fn delivery_in_arbitrary_chunks() {
        let rate = LineRate::Oc3;
        let fs = frames(rate, 8);
        let stream: Vec<u8> = fs.iter().flatten().copied().collect();
        let mut a = FrameAligner::new(rate);
        let mut out = Vec::new();
        // Push in awkward chunk sizes.
        for chunk in stream.chunks(731) {
            a.push(chunk, &mut out);
        }
        assert!(a.is_synced());
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn tolerates_sub_threshold_pattern_misses() {
        let rate = LineRate::Oc3;
        let mut fs = frames(rate, 10);
        // Corrupt the A1 octets of one mid-stream frame.
        fs[6][0] ^= 0xFF;
        let stream: Vec<u8> = fs.iter().flatten().copied().collect();
        let mut a = FrameAligner::new(rate);
        let mut out = Vec::new();
        a.push(&stream, &mut out);
        assert!(a.is_synced(), "one miss must not drop alignment");
        assert_eq!(out.len(), 8); // frames 2..9 delivered, incl. the damaged one
        assert_eq!(a.losses(), 0);
    }

    #[test]
    fn loses_frame_after_threshold_and_reacquires() {
        let rate = LineRate::Oc3;
        let fs = frames(rate, 6);
        let stream: Vec<u8> = fs.iter().flatten().copied().collect();
        let mut a = FrameAligner::new(rate);
        let mut out = Vec::new();
        a.push(&stream, &mut out);
        assert!(a.is_synced());
        // Garbage with no pattern, longer than LOF_THRESHOLD frames.
        let garbage = vec![0x55u8; rate.frame_octets() * (LOF_THRESHOLD as usize + 1)];
        a.push(&garbage, &mut out);
        assert!(!a.is_synced());
        assert_eq!(a.losses(), 1);
        // Clean frames again: reacquire.
        let fs2 = frames(rate, 6);
        let stream2: Vec<u8> = fs2.iter().flatten().copied().collect();
        a.push(&stream2, &mut out);
        assert!(a.is_synced());
        assert_eq!(a.acquisitions(), 2);
    }

    #[test]
    fn hunt_keeps_pattern_prefix_across_chunks() {
        // The pattern split across two pushes must still be found.
        let rate = LineRate::Oc3;
        let fs = frames(rate, 5);
        let stream: Vec<u8> = fs.iter().flatten().copied().collect();
        let mut a = FrameAligner::new(rate);
        let mut out = Vec::new();
        // Push garbage ending with half the pattern, then the rest.
        let mut part1 = vec![0x11u8; 97];
        part1.extend_from_slice(&stream[..4]); // A1 A1 A1 A2
        a.push(&part1, &mut out);
        a.push(&stream[4..], &mut out);
        assert!(a.is_synced());
    }
}
