//! # hni-sonet — the SONET transmission substrate
//!
//! The physical path under the host interface: SONET STS-3c (155.52 Mb/s,
//! "OC-3") and STS-12c (622.08 Mb/s, "OC-12") framing with ATM cells
//! mapped into the synchronous payload envelope. The 622 Mb/s STS-12c
//! path is the design point of the host-interface architecture under
//! study; STS-3c is the comparison point its delay analysis keeps
//! returning to.
//!
//! Modules:
//!
//! * [`rates`] — the rate arithmetic everything else quotes: line rate,
//!   payload rate (149.76 / 599.04 Mb/s), cell time, cell slot rate.
//! * [`frame`] — STS-Nc frame construction/parsing: transport overhead
//!   (A1/A2 alignment, J0, B1/B2 parity, H1–H3 pointer with
//!   concatenation indications), path overhead (J1, B3, C2 = 0x13 "ATM
//!   mapping", H4 cell-offset), fixed stuff, payload extraction.
//! * [`scramble`] — the frame-synchronous 1 + x⁶ + x⁷ section scrambler.
//! * [`sync`] — receiver frame alignment (A1A2 hunting) state machine.
//! * [`tc`] — the ATM transmission-convergence sublayer: cells →
//!   payload byte stream (with idle-cell insertion and x⁴³+1 payload
//!   scrambling) and back (frame sync → payload extraction → cell
//!   delineation → payload descrambling → idle removal).
//!
//! ## Documented simplifications
//!
//! Real SONET lets the SPE float via the H1/H2 pointer and adjust with
//! positive/negative stuffing. This model operates **locked**: the SPE
//! occupies exactly the payload columns of each frame and the pointer
//! carries a fixed value. Clock wander/jitter and pointer movements are
//! transmission-plant phenomena with no bearing on the host-interface
//! questions this workspace studies; the *rates* and *overhead geometry*
//! — which do matter, because they set the cell slot rate the interface
//! must keep up with — are exact. B2 is computed per STS-1 slice over
//! the non-SOH rows, B1 over the previous scrambled frame, B3 over the
//! previous SPE, all per GR-253 definitions.

pub mod frame;
pub mod rates;
pub mod scramble;
pub mod sync;
pub mod tc;

pub use frame::{FrameBuilder, FrameError, FrameGeometry, FrameParser, ParsedFrame};
pub use rates::LineRate;
pub use scramble::FrameScrambler;
pub use sync::{FrameAligner, FrameSyncState};
pub use tc::{TcReceiver, TcTransmitter};
