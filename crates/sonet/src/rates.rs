//! Rate arithmetic for the SONET line rates in play.
//!
//! Every throughput claim in the experiments is measured against the
//! numbers defined here, and they are *derived* from frame geometry, not
//! written down as magic constants: an STS-Nc frame is 9 rows × 90·N
//! columns every 125 µs; payload columns are what remains after transport
//! overhead (3·N columns), path overhead (1 column) and fixed stuff
//! (N/3 − 1 columns).

use hni_sim::Duration;

/// The line rates the simulated plant can run at. The paper evaluates
/// OC-3 and OC-12; OC-48 and OC-192 are the growth rates the burst-mode
/// delineator leaves headroom for (same frame geometry formulas, larger
/// N).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LineRate {
    /// STS-3c / OC-3: 155.52 Mb/s line, 149.76 Mb/s payload.
    Oc3,
    /// STS-12c / OC-12: 622.08 Mb/s line, 599.04 Mb/s payload.
    Oc12,
    /// STS-48c / OC-48: 2488.32 Mb/s line, 2396.16 Mb/s payload.
    Oc48,
    /// STS-192c / OC-192: 9953.28 Mb/s line, 9584.64 Mb/s payload.
    Oc192,
}

/// Frames per second: one frame every 125 µs.
pub const FRAMES_PER_SECOND: u64 = 8000;

impl LineRate {
    /// The STS level N (3, 12, 48 or 192).
    pub const fn sts_n(self) -> usize {
        match self {
            LineRate::Oc3 => 3,
            LineRate::Oc12 => 12,
            LineRate::Oc48 => 48,
            LineRate::Oc192 => 192,
        }
    }

    /// Columns per row (90·N).
    pub const fn columns(self) -> usize {
        90 * self.sts_n()
    }

    /// Octets per frame (9 rows × 90·N columns).
    pub const fn frame_octets(self) -> usize {
        9 * self.columns()
    }

    /// Transport-overhead columns (3·N).
    pub const fn toh_columns(self) -> usize {
        3 * self.sts_n()
    }

    /// Fixed-stuff columns in the SPE (N/3 − 1).
    pub const fn fixed_stuff_columns(self) -> usize {
        self.sts_n() / 3 - 1
    }

    /// Payload columns available to ATM cells
    /// (90·N − 3·N − 1 POH − fixed stuff).
    pub const fn payload_columns(self) -> usize {
        self.columns() - self.toh_columns() - 1 - self.fixed_stuff_columns()
    }

    /// Payload octets per frame.
    pub const fn payload_octets_per_frame(self) -> usize {
        9 * self.payload_columns()
    }

    /// Line rate in bits per second (exact).
    pub fn line_bps(self) -> f64 {
        (self.frame_octets() as u64 * 8 * FRAMES_PER_SECOND) as f64
    }

    /// ATM payload rate in bits per second (exact).
    pub fn payload_bps(self) -> f64 {
        (self.payload_octets_per_frame() as u64 * 8 * FRAMES_PER_SECOND) as f64
    }

    /// Mean cell slot rate the interface must sustain: payload rate
    /// divided by 424 bits per cell.
    pub fn cell_slots_per_second(self) -> f64 {
        self.payload_bps() / 424.0
    }

    /// Mean time between cell slots at full payload rate — the per-cell
    /// processing budget of the paper's delay analysis.
    pub fn cell_slot_time(self) -> Duration {
        Duration::for_bits(424, self.payload_bps())
    }

    /// Time for one cell at raw line rate (53 octets at line speed) —
    /// the figure usually quoted ("2.7 µs at 155, 0.68 µs at 622").
    pub fn cell_line_time(self) -> Duration {
        Duration::for_bits(424, self.line_bps())
    }

    /// Frame duration: always 125 µs.
    pub fn frame_time(self) -> Duration {
        Duration::from_us(125)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oc3_geometry() {
        let r = LineRate::Oc3;
        assert_eq!(r.columns(), 270);
        assert_eq!(r.frame_octets(), 2430);
        assert_eq!(r.toh_columns(), 9);
        assert_eq!(r.fixed_stuff_columns(), 0);
        assert_eq!(r.payload_columns(), 260);
        assert_eq!(r.payload_octets_per_frame(), 2340);
    }

    #[test]
    fn oc12_geometry() {
        let r = LineRate::Oc12;
        assert_eq!(r.columns(), 1080);
        assert_eq!(r.frame_octets(), 9720);
        assert_eq!(r.toh_columns(), 36);
        assert_eq!(r.fixed_stuff_columns(), 3);
        assert_eq!(r.payload_columns(), 1040);
        assert_eq!(r.payload_octets_per_frame(), 9360);
    }

    #[test]
    fn oc48_geometry() {
        let r = LineRate::Oc48;
        assert_eq!(r.columns(), 4320);
        assert_eq!(r.frame_octets(), 38_880);
        assert_eq!(r.toh_columns(), 144);
        assert_eq!(r.fixed_stuff_columns(), 15);
        assert_eq!(r.payload_columns(), 4160);
        assert_eq!(r.payload_octets_per_frame(), 37_440);
    }

    #[test]
    fn oc192_geometry() {
        let r = LineRate::Oc192;
        assert_eq!(r.columns(), 17_280);
        assert_eq!(r.frame_octets(), 155_520);
        assert_eq!(r.toh_columns(), 576);
        assert_eq!(r.fixed_stuff_columns(), 63);
        assert_eq!(r.payload_columns(), 16_640);
        assert_eq!(r.payload_octets_per_frame(), 149_760);
    }

    #[test]
    fn canonical_rates() {
        assert_eq!(LineRate::Oc3.line_bps(), 155.52e6);
        assert_eq!(LineRate::Oc12.line_bps(), 622.08e6);
        assert_eq!(LineRate::Oc48.line_bps(), 2488.32e6);
        assert_eq!(LineRate::Oc192.line_bps(), 9953.28e6);
        assert_eq!(LineRate::Oc3.payload_bps(), 149.76e6);
        assert_eq!(LineRate::Oc12.payload_bps(), 599.04e6);
        assert_eq!(LineRate::Oc48.payload_bps(), 2396.16e6);
        assert_eq!(LineRate::Oc192.payload_bps(), 9584.64e6);
    }

    #[test]
    fn cell_budget_numbers() {
        // The paper-era headline numbers.
        let t3 = LineRate::Oc3.cell_line_time();
        let t12 = LineRate::Oc12.cell_line_time();
        assert!((t3.as_us_f64() - 2.726).abs() < 0.001, "{t3}");
        assert!((t12.as_ns_f64() - 681.584).abs() < 0.01, "{t12}");
        // Slot time at payload rate is slightly longer than line-rate
        // cell time (overhead removed).
        assert!(LineRate::Oc12.cell_slot_time() > t12);
    }

    #[test]
    fn cell_slot_rate() {
        // 599.04 Mb/s / 424 b ≈ 1.4128 M cells/s.
        let r = LineRate::Oc12.cell_slots_per_second();
        assert!((r - 1_412_830.0).abs() < 1000.0, "{r}");
        // The growth rates: ≈ 5.65 M and ≈ 22.6 M cells/s.
        let r48 = LineRate::Oc48.cell_slots_per_second();
        assert!((r48 - 5_651_321.0).abs() < 1000.0, "{r48}");
        let r192 = LineRate::Oc192.cell_slots_per_second();
        assert!((r192 - 22_605_283.0).abs() < 1000.0, "{r192}");
    }
}
