//! STS-Nc frame construction and parsing.
//!
//! A frame is 9 rows × 90·N columns of octets, transmitted row-major,
//! every 125 µs. Column layout (this model, locked SPE):
//!
//! ```text
//!  cols 0..3N-1        : transport overhead (TOH)
//!  col  3N             : path overhead (POH): J1,B3,C2,G1,F2,H4,Z3..Z5
//!  cols 3N+1..3N+stuff : fixed stuff (N/3−1 columns, pattern 0x00)
//!  remaining columns   : ATM cell payload
//! ```
//!
//! TOH rows: A1·N, A2·N, J0/Z0·N (row 0 — never scrambled); B1/E1/F1
//! (row 1); D1–D3 (row 2); H1·N, H2·N, H3·N pointer (row 3); B2·N, K1,
//! K2 (row 4); D4–D12 (rows 5–7); S1/M1/E2 (row 8).
//!
//! Parity (computed here exactly as GR-253 defines the coverage):
//!
//! * **B1** — BIP-8 over the *previous* frame after scrambling.
//! * **B2\[i\]** — BIP-8 per STS-1 slice (columns ≡ i mod N) over the
//!   previous frame minus the section-overhead region, before scrambling.
//! * **B3** — BIP-8 over the previous SPE (POH + stuff + payload),
//!   before scrambling.
//!
//! C2 carries 0x13, the code point for ATM cell mapping; H4 carries the
//! offset to the next cell boundary so a receiver *could* shortcut
//! delineation (ours delineates by HEC, as real interfaces did —
//! trusting H4 couples you to the far framer's honesty).

use crate::rates::LineRate;
use crate::scramble::FrameScrambler;
use core::fmt;

/// A1 framing octet.
pub const A1: u8 = 0xF6;
/// A2 framing octet.
pub const A2: u8 = 0x28;
/// C2 code point for ATM mapping.
pub const C2_ATM: u8 = 0x13;
/// H1 octet, first STS-1: normal NDF, pointer value 0 (locked SPE).
pub const H1_LOCKED: u8 = 0x60;
/// H2 octet, first STS-1.
pub const H2_LOCKED: u8 = 0x00;
/// H1 concatenation indication (STS-1s 2..N of an STS-Nc).
pub const H1_CONCAT: u8 = 0x93;
/// H2 concatenation indication.
pub const H2_CONCAT: u8 = 0xFF;

/// Geometry helpers for one line rate.
#[derive(Clone, Copy, Debug)]
pub struct FrameGeometry {
    /// The line rate this geometry describes.
    pub rate: LineRate,
}

impl FrameGeometry {
    /// Geometry for `rate`.
    pub fn new(rate: LineRate) -> Self {
        FrameGeometry { rate }
    }

    /// Octet index of (row, col) in the serialized frame.
    #[inline]
    pub fn index(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < 9 && col < self.rate.columns());
        row * self.rate.columns() + col
    }

    /// Whether `col` is a transport-overhead column.
    #[inline]
    pub fn is_toh(&self, col: usize) -> bool {
        col < self.rate.toh_columns()
    }

    /// The path-overhead column.
    #[inline]
    pub fn poh_col(&self) -> usize {
        self.rate.toh_columns()
    }

    /// Whether `col` is a fixed-stuff column.
    #[inline]
    pub fn is_fixed_stuff(&self, col: usize) -> bool {
        let start = self.poh_col() + 1;
        col >= start && col < start + self.rate.fixed_stuff_columns()
    }

    /// Whether `col` carries ATM payload.
    #[inline]
    pub fn is_payload(&self, col: usize) -> bool {
        col >= self.poh_col() + 1 + self.rate.fixed_stuff_columns() && col < self.rate.columns()
    }

    /// Whether octet (row, col) is in the section-overhead region
    /// (rows 0–2 of the TOH columns) — excluded from B2 coverage.
    #[inline]
    pub fn is_soh(&self, row: usize, col: usize) -> bool {
        row < 3 && self.is_toh(col)
    }

    /// Whether octet (row, col) escapes scrambling (row 0 of TOH:
    /// A1/A2/J0 octets).
    #[inline]
    pub fn is_unscrambled(&self, row: usize, col: usize) -> bool {
        row == 0 && self.is_toh(col)
    }

    /// Whether (row, col) is part of the SPE (POH + stuff + payload).
    #[inline]
    pub fn is_spe(&self, col: usize) -> bool {
        col >= self.poh_col()
    }
}

fn bip8(acc: u8, octets: impl Iterator<Item = u8>) -> u8 {
    octets.fold(acc, |a, b| a ^ b)
}

/// Errors a [`FrameParser`] can report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Buffer length is not one frame at this rate.
    BadSize { expected: usize, got: usize },
    /// A1/A2 pattern not found where expected (out-of-frame).
    BadAlignment,
    /// The pointer octets are neither locked value nor concatenation.
    BadPointer,
    /// C2 does not indicate ATM mapping.
    BadSignalLabel(u8),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadSize { expected, got } => {
                write!(f, "frame size {got}, expected {expected}")
            }
            FrameError::BadAlignment => write!(f, "A1/A2 alignment lost"),
            FrameError::BadPointer => write!(f, "unexpected H1/H2 pointer"),
            FrameError::BadSignalLabel(c2) => write!(f, "C2 {c2:#04x} is not ATM"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Builds successive frames around caller-supplied payload octets.
///
/// Stateful across frames: parity octets describe the *previous* frame,
/// and the J1 path trace increments.
pub struct FrameBuilder {
    geo: FrameGeometry,
    frame_count: u64,
    b1_next: u8,
    b2_next: Vec<u8>,
    b3_next: u8,
}

impl FrameBuilder {
    /// A builder for `rate`. The first frame carries zero parity octets
    /// (nothing preceded it), as a freshly enabled framer would.
    pub fn new(rate: LineRate) -> Self {
        FrameBuilder {
            geo: FrameGeometry::new(rate),
            frame_count: 0,
            b1_next: 0,
            b2_next: vec![0; rate.sts_n()],
            b3_next: 0,
        }
    }

    /// Frames built so far.
    pub fn frames_built(&self) -> u64 {
        self.frame_count
    }

    /// Build one frame. `payload` must be exactly
    /// [`LineRate::payload_octets_per_frame`] octets; `h4_cell_offset` is
    /// the octet offset from the first payload octet of the *next* frame
    /// to the next cell boundary (mod 53).
    pub fn build(&mut self, payload: &[u8], h4_cell_offset: u8) -> Vec<u8> {
        let rate = self.geo.rate;
        let n = rate.sts_n();
        let cols = rate.columns();
        assert_eq!(
            payload.len(),
            rate.payload_octets_per_frame(),
            "payload must fill the frame exactly"
        );

        let mut f = vec![0u8; rate.frame_octets()];
        let geo = self.geo;

        // Row 0: A1 ×N, A2 ×N, J0/Z0.
        for i in 0..n {
            f[geo.index(0, i)] = A1;
            f[geo.index(0, n + i)] = A2;
            // J0 carries a section trace; Z0 growth octets numbered.
            f[geo.index(0, 2 * n + i)] = if i == 0 { 0x01 } else { 0xCC };
        }
        // Row 1: B1 (parity of previous scrambled frame).
        f[geo.index(1, 0)] = self.b1_next;
        // Row 3: pointer.
        f[geo.index(3, 0)] = H1_LOCKED;
        f[geo.index(3, n)] = H2_LOCKED;
        for i in 1..n {
            f[geo.index(3, i)] = H1_CONCAT;
            f[geo.index(3, n + i)] = H2_CONCAT;
        }
        // Row 4: B2 ×N.
        for i in 0..n {
            f[geo.index(4, i)] = self.b2_next[i];
        }

        // POH column.
        let poh = geo.poh_col();
        f[geo.index(0, poh)] = (self.frame_count & 0x3F) as u8 | 0x40; // J1 trace tick
        f[geo.index(1, poh)] = self.b3_next;
        f[geo.index(2, poh)] = C2_ATM;
        f[geo.index(5, poh)] = h4_cell_offset;

        // Payload columns, row-major.
        let mut p = 0;
        for row in 0..9 {
            for col in 0..cols {
                if geo.is_payload(col) {
                    f[geo.index(row, col)] = payload[p];
                    p += 1;
                }
            }
        }
        debug_assert_eq!(p, payload.len());

        // Parity for the NEXT frame: B3 over this SPE, B2 per slice over
        // non-SOH octets — both pre-scrambling.
        let mut b3 = 0u8;
        let mut b2 = vec![0u8; n];
        for row in 0..9 {
            for col in 0..cols {
                let b = f[geo.index(row, col)];
                if geo.is_spe(col) {
                    b3 ^= b;
                }
                if !geo.is_soh(row, col) {
                    b2[col % n] ^= b;
                }
            }
        }
        self.b3_next = b3;
        self.b2_next = b2;

        // Scramble everything except row 0 of TOH.
        let mut scr = FrameScrambler::new();
        for row in 0..9 {
            for col in 0..cols {
                let key = scr.next_octet();
                if !geo.is_unscrambled(row, col) {
                    f[geo.index(row, col)] ^= key;
                }
            }
        }

        // B1 for the next frame: over this frame post-scrambling.
        self.b1_next = bip8(0, f.iter().copied());
        self.frame_count += 1;
        f
    }
}

/// What a parsed frame yields.
#[derive(Clone, Debug)]
pub struct ParsedFrame {
    /// The extracted ATM payload octets.
    pub payload: Vec<u8>,
    /// Bits mismatching in B1 (0–8); section-layer errors.
    pub b1_errors: u32,
    /// Bits mismatching across all B2 octets; line-layer errors.
    pub b2_errors: u32,
    /// Bits mismatching in B3; path-layer errors.
    pub b3_errors: u32,
    /// The H4 cell-offset octet as received.
    pub h4: u8,
}

/// Parses successive frames, tracking parity across them.
pub struct FrameParser {
    geo: FrameGeometry,
    frames: u64,
    /// Parity computed from the previous frame, to compare with the
    /// B1/B2/B3 octets carried in the current one.
    b1_expect: Option<u8>,
    b2_expect: Option<Vec<u8>>,
    b3_expect: Option<u8>,
    total_b1_errors: u64,
    total_b2_errors: u64,
    total_b3_errors: u64,
}

impl FrameParser {
    /// A parser for `rate`.
    pub fn new(rate: LineRate) -> Self {
        FrameParser {
            geo: FrameGeometry::new(rate),
            frames: 0,
            b1_expect: None,
            b2_expect: None,
            b3_expect: None,
            total_b1_errors: 0,
            total_b2_errors: 0,
            total_b3_errors: 0,
        }
    }

    /// Frames parsed.
    pub fn frames_parsed(&self) -> u64 {
        self.frames
    }
    /// Cumulative B1 bit errors.
    pub fn total_b1_errors(&self) -> u64 {
        self.total_b1_errors
    }
    /// Cumulative B2 bit errors.
    pub fn total_b2_errors(&self) -> u64 {
        self.total_b2_errors
    }
    /// Cumulative B3 bit errors.
    pub fn total_b3_errors(&self) -> u64 {
        self.total_b3_errors
    }

    /// Parse one aligned frame.
    pub fn parse(&mut self, frame: &[u8]) -> Result<ParsedFrame, FrameError> {
        let rate = self.geo.rate;
        let n = rate.sts_n();
        let cols = rate.columns();
        if frame.len() != rate.frame_octets() {
            return Err(FrameError::BadSize {
                expected: rate.frame_octets(),
                got: frame.len(),
            });
        }
        let geo = self.geo;

        // Alignment check on the unscrambled row 0.
        for i in 0..n {
            if frame[geo.index(0, i)] != A1 || frame[geo.index(0, n + i)] != A2 {
                return Err(FrameError::BadAlignment);
            }
        }

        // B1 compares against the received (still-scrambled) previous
        // frame; compute over this frame as received for the next round.
        let b1_of_this = bip8(0, frame.iter().copied());

        // Descramble a working copy.
        let mut f = frame.to_vec();
        let mut scr = FrameScrambler::new();
        for row in 0..9 {
            for col in 0..cols {
                let key = scr.next_octet();
                if !geo.is_unscrambled(row, col) {
                    f[geo.index(row, col)] ^= key;
                }
            }
        }

        // Pointer sanity.
        let h1 = f[geo.index(3, 0)];
        let h2 = f[geo.index(3, n)];
        if (h1, h2) != (H1_LOCKED, H2_LOCKED) {
            return Err(FrameError::BadPointer);
        }
        for i in 1..n {
            if (f[geo.index(3, i)], f[geo.index(3, n + i)]) != (H1_CONCAT, H2_CONCAT) {
                return Err(FrameError::BadPointer);
            }
        }

        let poh = geo.poh_col();
        let c2 = f[geo.index(2, poh)];
        if c2 != C2_ATM {
            return Err(FrameError::BadSignalLabel(c2));
        }
        let h4 = f[geo.index(5, poh)];

        // Parity comparison with what the previous frame predicted.
        let b1_errors = match self.b1_expect {
            Some(exp) => (exp ^ f[geo.index(1, 0)]).count_ones(),
            None => 0,
        };
        let b2_errors = match &self.b2_expect {
            Some(exp) => (0..n)
                .map(|i| (exp[i] ^ f[geo.index(4, i)]).count_ones())
                .sum(),
            None => 0,
        };
        let b3_errors = match self.b3_expect {
            Some(exp) => (exp ^ f[geo.index(1, poh)]).count_ones(),
            None => 0,
        };

        // Compute this frame's parity for the next comparison.
        let mut b3 = 0u8;
        let mut b2 = vec![0u8; n];
        for row in 0..9 {
            for col in 0..cols {
                let b = f[geo.index(row, col)];
                if geo.is_spe(col) {
                    b3 ^= b;
                }
                if !geo.is_soh(row, col) {
                    b2[col % n] ^= b;
                }
            }
        }
        self.b1_expect = Some(b1_of_this);
        self.b2_expect = Some(b2);
        self.b3_expect = Some(b3);

        // Extract payload.
        let mut payload = Vec::with_capacity(rate.payload_octets_per_frame());
        for row in 0..9 {
            for col in 0..cols {
                if geo.is_payload(col) {
                    payload.push(f[geo.index(row, col)]);
                }
            }
        }

        self.frames += 1;
        self.total_b1_errors += b1_errors as u64;
        self.total_b2_errors += b2_errors as u64;
        self.total_b3_errors += b3_errors as u64;
        Ok(ParsedFrame {
            payload,
            b1_errors,
            b2_errors,
            b3_errors,
            h4,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload_for(rate: LineRate, seed: u8) -> Vec<u8> {
        (0..rate.payload_octets_per_frame())
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect()
    }

    #[test]
    fn roundtrip_payload_oc3() {
        roundtrip_payload(LineRate::Oc3);
    }

    #[test]
    fn roundtrip_payload_oc12() {
        roundtrip_payload(LineRate::Oc12);
    }

    fn roundtrip_payload(rate: LineRate) {
        let mut b = FrameBuilder::new(rate);
        let mut p = FrameParser::new(rate);
        for seed in 0..5u8 {
            let payload = payload_for(rate, seed);
            let frame = b.build(&payload, seed);
            let parsed = p.parse(&frame).expect("clean frame parses");
            assert_eq!(parsed.payload, payload, "seed {seed}");
            assert_eq!(parsed.h4, seed);
            assert_eq!(parsed.b1_errors, 0);
            assert_eq!(parsed.b2_errors, 0);
            assert_eq!(parsed.b3_errors, 0);
        }
        assert_eq!(p.frames_parsed(), 5);
    }

    #[test]
    fn frame_has_framing_pattern_in_clear() {
        let mut b = FrameBuilder::new(LineRate::Oc3);
        let frame = b.build(&payload_for(LineRate::Oc3, 0), 0);
        assert_eq!(&frame[0..3], &[A1, A1, A1]);
        assert_eq!(&frame[3..6], &[A2, A2, A2]);
    }

    #[test]
    fn scrambled_region_differs_from_plaintext() {
        // Statistical smoke test: payload octets on the wire should not
        // equal the plaintext payload (except rare coincidences).
        let mut b = FrameBuilder::new(LineRate::Oc3);
        let payload = vec![0u8; LineRate::Oc3.payload_octets_per_frame()];
        let frame = b.build(&payload, 0);
        let nonzero = frame[270..].iter().filter(|&&x| x != 0).count();
        assert!(
            nonzero > 1500,
            "scrambling must whiten zeros, got {nonzero}"
        );
    }

    #[test]
    fn corrupted_payload_bit_shows_in_b1_b2_b3() {
        let rate = LineRate::Oc3;
        let mut b = FrameBuilder::new(rate);
        let mut p = FrameParser::new(rate);
        let f0 = b.build(&payload_for(rate, 0), 0);
        p.parse(&f0).unwrap();
        // Corrupt one payload bit of frame 1, then parse frame 2 to see
        // the parity report (parity for frame k is carried in frame k+1).
        let mut f1 = b.build(&payload_for(rate, 1), 0);
        let geo = FrameGeometry::new(rate);
        let idx = geo.index(5, geo.poh_col() + 5); // a payload octet
        f1[idx] ^= 0x10;
        p.parse(&f1).unwrap();
        let f2 = b.build(&payload_for(rate, 2), 0);
        let parsed = p.parse(&f2).unwrap();
        assert_eq!(parsed.b1_errors, 1, "B1 covers everything");
        assert_eq!(parsed.b2_errors, 1, "payload is in B2 coverage");
        assert_eq!(parsed.b3_errors, 1, "payload is in the SPE");
    }

    #[test]
    fn corrupted_soh_octet_shows_only_in_b1() {
        let rate = LineRate::Oc3;
        let mut b = FrameBuilder::new(rate);
        let mut p = FrameParser::new(rate);
        p.parse(&b.build(&payload_for(rate, 0), 0)).unwrap();
        let mut f1 = b.build(&payload_for(rate, 1), 0);
        let geo = FrameGeometry::new(rate);
        f1[geo.index(2, 1)] ^= 0x01; // D-channel octet in SOH (scrambled, but B2/B3-exempt)
        p.parse(&f1).unwrap();
        let parsed = p.parse(&b.build(&payload_for(rate, 2), 0)).unwrap();
        assert_eq!(parsed.b1_errors, 1);
        assert_eq!(parsed.b2_errors, 0, "SOH is outside B2 coverage");
        assert_eq!(parsed.b3_errors, 0, "SOH is outside the SPE");
    }

    #[test]
    fn bad_alignment_detected() {
        let mut b = FrameBuilder::new(LineRate::Oc3);
        let mut frame = b.build(&payload_for(LineRate::Oc3, 0), 0);
        frame[0] = 0x00;
        let mut p = FrameParser::new(LineRate::Oc3);
        assert!(matches!(p.parse(&frame), Err(FrameError::BadAlignment)));
    }

    #[test]
    fn bad_size_detected() {
        let mut p = FrameParser::new(LineRate::Oc3);
        let err = p.parse(&[0u8; 100]).unwrap_err();
        assert!(matches!(
            err,
            FrameError::BadSize {
                expected: 2430,
                got: 100
            }
        ));
    }

    #[test]
    fn c2_must_be_atm() {
        let rate = LineRate::Oc3;
        let mut b = FrameBuilder::new(rate);
        let mut frame = b.build(&payload_for(rate, 0), 0);
        // Flip C2 through the scrambler: locate and XOR both.
        let geo = FrameGeometry::new(rate);
        let mut scr = FrameScrambler::new();
        let mut keys = vec![0u8; rate.frame_octets()];
        for k in keys.iter_mut() {
            *k = scr.next_octet();
        }
        let idx = geo.index(2, geo.poh_col());
        frame[idx] = 0xFF ^ keys[idx] ^ (C2_ATM ^ C2_ATM); // set to 0xFF pre-scramble
        frame[idx] = 0xFF ^ keys[idx];
        let mut p = FrameParser::new(rate);
        assert!(matches!(
            p.parse(&frame),
            Err(FrameError::BadSignalLabel(0xFF))
        ));
    }

    #[test]
    fn geometry_classification_partitions_columns() {
        for rate in [LineRate::Oc3, LineRate::Oc12] {
            let geo = FrameGeometry::new(rate);
            let mut toh = 0;
            let mut poh = 0;
            let mut stuff = 0;
            let mut pay = 0;
            for col in 0..rate.columns() {
                let classes = [
                    geo.is_toh(col),
                    col == geo.poh_col(),
                    geo.is_fixed_stuff(col),
                    geo.is_payload(col),
                ];
                assert_eq!(
                    classes.iter().filter(|&&c| c).count(),
                    1,
                    "column {col} must be exactly one class"
                );
                if classes[0] {
                    toh += 1
                } else if classes[1] {
                    poh += 1
                } else if classes[2] {
                    stuff += 1
                } else {
                    pay += 1
                }
            }
            assert_eq!(toh, rate.toh_columns());
            assert_eq!(poh, 1);
            assert_eq!(stuff, rate.fixed_stuff_columns());
            assert_eq!(pay, rate.payload_columns());
        }
    }
}
