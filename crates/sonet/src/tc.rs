//! The ATM transmission convergence (TC) sublayer: cells ⇄ SONET payload.
//!
//! **Transmit** ([`TcTransmitter`]): data cells are queued; each frame
//! tick pulls exactly one frame's payload worth of octets, inserting idle
//! cells whenever the queue runs dry (the payload is synchronous — it
//! cannot wait). Cell payloads are scrambled with the self-synchronising
//! x⁴³+1 scrambler in stream order; headers travel in the clear (the HEC
//! protects them, and delineation needs them predictable). The H4 POH
//! octet is maintained with the offset to the next cell boundary.
//!
//! **Receive** ([`TcReceiver`]): octets → frame alignment → frame
//! parsing (overhead checks, parity accounting) → payload extraction →
//! HEC cell delineation → payload descrambling → idle-cell removal →
//! data cells out.
//!
//! ## Model note
//!
//! The payload descrambler is clocked by delineated cell payloads. A
//! cell whose header the HEC machine *discards* never reaches us, so its
//! 384 payload bits don't clock the descrambler; the self-synchronising
//! register then corrupts the first 43 bits of the *next* cell's payload
//! before re-tracking. Real bit-position-driven hardware would not
//! corrupt that neighbour. The divergence only occurs for cells already
//! being discarded for header damage — a condition in which the
//! neighbouring frame is almost always already doomed at the AAL layer —
//! and is documented here rather than papered over.

use crate::frame::{FrameBuilder, FrameParser};
use crate::rates::LineRate;
use crate::sync::FrameAligner;
use hni_atm::{Cell, Delineator, Descrambler, Scrambler, CELL_SIZE, PAYLOAD_SIZE};
use std::collections::VecDeque;

/// Cells → frames.
pub struct TcTransmitter {
    rate: LineRate,
    builder: FrameBuilder,
    scrambler: Scrambler,
    /// Octet queue awaiting frame payload slots (already scrambled).
    queue: VecDeque<u8>,
    /// Octets consumed into frames so far (for H4 phase).
    consumed: u64,
    data_cells: u64,
    idle_cells: u64,
}

impl TcTransmitter {
    /// A transmitter for `rate`.
    pub fn new(rate: LineRate) -> Self {
        TcTransmitter {
            rate,
            builder: FrameBuilder::new(rate),
            scrambler: Scrambler::new(),
            queue: VecDeque::new(),
            consumed: 0,
            data_cells: 0,
            idle_cells: 0,
        }
    }

    /// Data cells queued so far.
    pub fn data_cells(&self) -> u64 {
        self.data_cells
    }
    /// Idle cells inserted so far.
    pub fn idle_cells(&self) -> u64 {
        self.idle_cells
    }
    /// Octets currently queued (cells waiting for payload slots).
    pub fn backlog_octets(&self) -> usize {
        self.queue.len()
    }
    /// Cells currently queued.
    pub fn backlog_cells(&self) -> usize {
        self.queue.len() / CELL_SIZE
    }

    fn enqueue(&mut self, cell: &Cell) {
        let bytes = cell.as_bytes();
        // Header in the clear.
        self.queue.extend(&bytes[..5]);
        // Payload through the stream scrambler.
        let mut payload = [0u8; PAYLOAD_SIZE];
        payload.copy_from_slice(&bytes[5..]);
        self.scrambler.scramble(&mut payload);
        self.queue.extend(payload.iter());
    }

    /// Queue a data cell for transmission.
    pub fn push_cell(&mut self, cell: &Cell) {
        self.data_cells += 1;
        self.enqueue(cell);
    }

    /// Produce the next 125 µs frame. Idle cells are inserted if the
    /// queue cannot fill the payload.
    pub fn pull_frame(&mut self) -> Vec<u8> {
        let need = self.rate.payload_octets_per_frame();
        while self.queue.len() < need {
            let idle = Cell::idle();
            self.idle_cells += 1;
            self.enqueue(&idle);
        }
        let payload: Vec<u8> = self.queue.drain(..need).collect();
        self.consumed += need as u64;
        // Offset from the next frame's first payload octet to the next
        // cell boundary.
        let phase = (self.consumed % CELL_SIZE as u64) as u8;
        let h4 = if phase == 0 {
            0
        } else {
            CELL_SIZE as u8 - phase
        };
        self.builder.build(&payload, h4)
    }
}

/// Frames → cells.
pub struct TcReceiver {
    aligner: FrameAligner,
    parser: FrameParser,
    delineator: Delineator,
    descrambler: Descrambler,
    frame_errors: u64,
    data_cells: u64,
    idle_cells: u64,
    /// Reusable frame scratch (outer Vec capacity persists across calls).
    frames: Vec<Vec<u8>>,
    /// Reusable delineated-cell scratch.
    cells: Vec<Cell>,
}

impl TcReceiver {
    /// A receiver for `rate`.
    pub fn new(rate: LineRate) -> Self {
        TcReceiver {
            aligner: FrameAligner::new(rate),
            parser: FrameParser::new(rate),
            delineator: Delineator::new().with_idle_cells(),
            descrambler: Descrambler::new(),
            frame_errors: 0,
            data_cells: 0,
            idle_cells: 0,
            frames: Vec::new(),
            cells: Vec::new(),
        }
    }

    /// Access to the frame aligner (state, acquisition stats).
    pub fn aligner(&self) -> &FrameAligner {
        &self.aligner
    }
    /// Access to the frame parser (B1/B2/B3 error accounting).
    pub fn parser(&self) -> &FrameParser {
        &self.parser
    }
    /// Access to the cell delineator (sync state, HEC stats).
    pub fn delineator(&self) -> &Delineator {
        &self.delineator
    }
    /// Frames that failed overhead checks and were skipped.
    pub fn frame_errors(&self) -> u64 {
        self.frame_errors
    }
    /// Data cells delivered.
    pub fn data_cells(&self) -> u64 {
        self.data_cells
    }
    /// Idle cells removed.
    pub fn idle_cells(&self) -> u64 {
        self.idle_cells
    }

    /// Feed received line octets; recovered data cells are appended to
    /// `out`.
    pub fn push_bytes(&mut self, bytes: &[u8], out: &mut Vec<Cell>) {
        let mut frames = std::mem::take(&mut self.frames);
        frames.clear();
        self.aligner.push(bytes, &mut frames);
        let mut cells = std::mem::take(&mut self.cells);
        cells.clear();
        for frame in &frames {
            match self.parser.parse(frame) {
                Ok(parsed) => self.delineator.push_slice(&parsed.payload, &mut cells),
                Err(_) => {
                    // Skip the frame; the delineator simply sees a gap in
                    // the payload stream (as hardware would on a bad frame).
                    self.frame_errors += 1;
                }
            }
        }
        for mut cell in cells.drain(..) {
            let mut payload = [0u8; PAYLOAD_SIZE];
            payload.copy_from_slice(cell.payload());
            self.descrambler.descramble(&mut payload);
            cell.payload_mut().copy_from_slice(&payload);
            if cell.is_idle() || cell.is_unassigned() {
                self.idle_cells += 1;
            } else {
                self.data_cells += 1;
                out.push(cell);
            }
        }
        self.frames = frames;
        self.cells = cells;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hni_atm::{HeaderRepr, VcId};

    fn data_cell(vci: u16, fill: u8) -> Cell {
        Cell::new(
            &HeaderRepr::data(VcId::new(0, vci), false),
            &[fill; PAYLOAD_SIZE],
        )
        .unwrap()
    }

    /// Run enough idle frames through to establish alignment + delineation.
    fn warmed_up(rate: LineRate) -> (TcTransmitter, TcReceiver) {
        let mut tx = TcTransmitter::new(rate);
        let mut rx = TcReceiver::new(rate);
        let mut sink = Vec::new();
        for _ in 0..12 {
            let f = tx.pull_frame();
            rx.push_bytes(&f, &mut sink);
        }
        assert!(rx.aligner().is_synced(), "warm-up must align frames");
        assert!(rx.delineator().is_synced(), "warm-up must delineate");
        assert!(sink.is_empty(), "idle cells must not be delivered");
        (tx, rx)
    }

    #[test]
    fn end_to_end_cells_over_frames_oc3() {
        end_to_end(LineRate::Oc3);
    }

    #[test]
    fn end_to_end_cells_over_frames_oc12() {
        end_to_end(LineRate::Oc12);
    }

    #[test]
    fn end_to_end_cells_over_frames_oc48() {
        end_to_end(LineRate::Oc48);
    }

    #[test]
    fn end_to_end_cells_over_frames_oc192() {
        end_to_end(LineRate::Oc192);
    }

    fn end_to_end(rate: LineRate) {
        let (mut tx, mut rx) = warmed_up(rate);
        let sent: Vec<Cell> = (0..200)
            .map(|i| data_cell(32 + (i % 100), i as u8))
            .collect();
        for c in &sent {
            tx.push_cell(c);
        }
        let mut got = Vec::new();
        // Enough frames to flush 200 cells (200×53 = 10600 octets).
        for _ in 0..(10_600 / rate.payload_octets_per_frame() + 2) {
            let f = tx.pull_frame();
            rx.push_bytes(&f, &mut got);
        }
        assert_eq!(got.len(), sent.len());
        for (g, s) in got.iter().zip(&sent) {
            assert_eq!(g.as_bytes(), s.as_bytes(), "cells must survive verbatim");
        }
    }

    #[test]
    fn idle_fill_accounting() {
        let rate = LineRate::Oc3;
        let (mut tx, _rx) = warmed_up(rate);
        let idle_before = tx.idle_cells();
        tx.push_cell(&data_cell(40, 1));
        let _ = tx.pull_frame();
        // One frame = 2340 octets = ~44.15 cells; 1 data cell queued, so
        // at least 43 idles must have been inserted.
        assert!(tx.idle_cells() - idle_before >= 43);
        assert_eq!(tx.data_cells(), 1);
    }

    #[test]
    fn cells_straddle_frame_boundaries() {
        // 2340 % 53 ≠ 0, so straddling happens constantly; verify payload
        // integrity across many frames with patterned payloads.
        let rate = LineRate::Oc3;
        let (mut tx, mut rx) = warmed_up(rate);
        let sent: Vec<Cell> = (0..100)
            .map(|i| {
                let mut p = [0u8; PAYLOAD_SIZE];
                for (j, b) in p.iter_mut().enumerate() {
                    *b = (i * 13 + j as u16) as u8;
                }
                Cell::new(&HeaderRepr::data(VcId::new(1, 500), i % 2 == 0), &p).unwrap()
            })
            .collect();
        for c in &sent {
            tx.push_cell(c);
        }
        let mut got = Vec::new();
        for _ in 0..5 {
            let f = tx.pull_frame();
            rx.push_bytes(&f, &mut got);
        }
        assert_eq!(got.len(), 100);
        for (g, s) in got.iter().zip(&sent) {
            assert_eq!(g.as_bytes(), s.as_bytes());
        }
    }

    #[test]
    fn backlog_reported() {
        let mut tx = TcTransmitter::new(LineRate::Oc3);
        for i in 0..10 {
            tx.push_cell(&data_cell(40, i));
        }
        assert_eq!(tx.backlog_cells(), 10);
        assert_eq!(tx.backlog_octets(), 530);
        let _ = tx.pull_frame();
        assert_eq!(tx.backlog_cells(), 0, "one OC-3 frame swallows 10 cells");
    }

    #[test]
    fn no_parity_errors_on_clean_path() {
        let rate = LineRate::Oc12;
        let (mut tx, mut rx) = warmed_up(rate);
        for i in 0..500 {
            tx.push_cell(&data_cell(32 + (i % 64), i as u8));
        }
        let mut got = Vec::new();
        for _ in 0..6 {
            let f = tx.pull_frame();
            rx.push_bytes(&f, &mut got);
        }
        assert_eq!(rx.parser().total_b1_errors(), 0);
        assert_eq!(rx.parser().total_b2_errors(), 0);
        assert_eq!(rx.parser().total_b3_errors(), 0);
        assert_eq!(rx.frame_errors(), 0);
    }
}
