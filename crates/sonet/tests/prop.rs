//! Property-based tests for the SONET substrate.

use hni_atm::{Cell, HeaderRepr, VcId, PAYLOAD_SIZE};
use hni_sonet::{FrameAligner, FrameBuilder, FrameParser, LineRate, TcReceiver, TcTransmitter};
use proptest::prelude::*;

fn arb_rate() -> impl Strategy<Value = LineRate> {
    prop_oneof![Just(LineRate::Oc3), Just(LineRate::Oc12)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any payload rides any frame and comes back intact, with clean
    /// parity, across a sequence of frames.
    #[test]
    fn frame_roundtrip(rate in arb_rate(), seed in any::<u64>(), frames in 1usize..5) {
        let mut rng = hni_sim::Rng::new(seed);
        let mut b = FrameBuilder::new(rate);
        let mut p = FrameParser::new(rate);
        for _ in 0..frames {
            let payload: Vec<u8> = (0..rate.payload_octets_per_frame())
                .map(|_| rng.next_u64() as u8)
                .collect();
            let frame = b.build(&payload, 0);
            prop_assert_eq!(frame.len(), rate.frame_octets());
            let parsed = p.parse(&frame).unwrap();
            prop_assert_eq!(parsed.payload, payload);
            prop_assert_eq!(parsed.b1_errors + parsed.b2_errors + parsed.b3_errors, 0);
        }
    }

    /// Corrupting any single octet of a mid-stream frame is visible in
    /// B1 (section parity covers everything).
    #[test]
    fn any_corruption_hits_b1(rate in arb_rate(), pos in any::<prop::sample::Index>(),
                              flip in 1u8..=255) {
        let mut b = FrameBuilder::new(rate);
        let mut p = FrameParser::new(rate);
        let payload = vec![0xA5u8; rate.payload_octets_per_frame()];
        p.parse(&b.build(&payload, 0)).unwrap();
        let mut f1 = b.build(&payload, 0);
        let idx = pos.index(f1.len());
        f1[idx] ^= flip;
        // The damaged frame may fail overhead checks outright (pointer,
        // C2, alignment) — that is detection too. If it parses, the next
        // frame's B1 must register the damage.
        if p.parse(&f1).is_ok() {
            let f2 = b.build(&payload, 0);
            let parsed = p.parse(&f2).unwrap();
            prop_assert!(parsed.b1_errors > 0, "corruption at {idx} invisible to B1");
        }
    }

    /// The frame aligner finds frames from any byte offset into the
    /// stream.
    #[test]
    fn aligner_from_any_offset(offset in 0usize..3000, seed in any::<u64>()) {
        let rate = LineRate::Oc3;
        let mut rng = hni_sim::Rng::new(seed);
        let mut b = FrameBuilder::new(rate);
        let frames: Vec<Vec<u8>> = (0..8)
            .map(|_| {
                let payload: Vec<u8> = (0..rate.payload_octets_per_frame())
                    .map(|_| rng.next_u64() as u8)
                    .collect();
                b.build(&payload, 0)
            })
            .collect();
        let mut stream: Vec<u8> = frames.iter().flatten().copied().collect();
        let offset = offset % (rate.frame_octets() * 2);
        stream.drain(..offset);
        let mut a = FrameAligner::new(rate);
        let mut out = Vec::new();
        a.push(&stream, &mut out);
        prop_assert!(a.is_synced());
        for f in &out {
            prop_assert_eq!(f.len(), rate.frame_octets());
            prop_assert_eq!(f[0], hni_sonet::frame::A1);
        }
    }

    /// Any sequence of data cells survives the full TC path (framing,
    /// scrambling, idle fill, delineation) verbatim and in order.
    #[test]
    fn tc_roundtrip(rate in arb_rate(), seed in any::<u64>(), n_cells in 1usize..120) {
        let mut rng = hni_sim::Rng::new(seed);
        let mut tx = TcTransmitter::new(rate);
        let mut rx = TcReceiver::new(rate);
        let mut sink = Vec::new();
        // Warm up sync.
        for _ in 0..12 {
            let f = tx.pull_frame();
            rx.push_bytes(&f, &mut sink);
        }
        prop_assert!(sink.is_empty());

        let cells: Vec<Cell> = (0..n_cells)
            .map(|_| {
                let mut payload = [0u8; PAYLOAD_SIZE];
                for b in payload.iter_mut() {
                    *b = rng.next_u64() as u8;
                }
                let vci = 32 + (rng.next_u64() % 1000) as u16;
                Cell::new(&HeaderRepr::data(VcId::new(0, vci), rng.chance(0.3)), &payload)
                    .unwrap()
            })
            .collect();
        for c in &cells {
            tx.push_cell(c);
        }
        let mut got = Vec::new();
        let frames_needed = (n_cells * 53) / rate.payload_octets_per_frame() + 2;
        for _ in 0..frames_needed {
            let f = tx.pull_frame();
            rx.push_bytes(&f, &mut got);
        }
        prop_assert_eq!(got.len(), cells.len());
        for (g, c) in got.iter().zip(&cells) {
            prop_assert_eq!(g.as_bytes(), c.as_bytes());
        }
    }
}
