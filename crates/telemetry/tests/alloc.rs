//! Allocation-count proofs for the tracing and profiling hot paths.
//!
//! A counting global allocator wraps `System`; the tests assert that
//! recording through a `NullTracer` — and into a warmed `RingTracer` —
//! and charging through a `NullProfiler` perform zero heap allocations,
//! which is what makes it safe to leave instrumentation in the per-cell
//! steady-state path.

use hni_telemetry::{
    Activity, Component, Duration, NullProfiler, NullTracer, Profiler, RingTracer, Stage,
    TailReservoir, Time, TraceEvent, Tracer,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

fn ev(i: u64) -> TraceEvent {
    TraceEvent::instant(Time::from_ns(i), Stage::TxFramer)
        .vc(64)
        .cell(i)
}

#[test]
fn null_tracer_records_without_allocating() {
    let mut t = NullTracer;
    let n = allocs_during(|| {
        for i in 0..10_000 {
            if t.enabled() {
                t.record(ev(i));
            }
        }
    });
    assert_eq!(n, 0, "NullTracer hot path allocated {n} times");
}

#[test]
fn null_profiler_charges_without_allocating() {
    // The exact shape of every profiler call site in the simulations:
    // gate on enabled(), then charge or gauge.
    let mut p = NullProfiler;
    let n = allocs_during(|| {
        for i in 0..100_000u64 {
            if p.enabled() {
                p.charge(
                    Component::RxEngine,
                    Activity::Busy,
                    Time::from_ns(i),
                    Duration::from_ns(600),
                );
                p.gauge(Component::RxFifo, Time::from_ns(i), i % 16);
            }
        }
    });
    assert_eq!(n, 0, "NullProfiler hot path allocated {n} times");
}

#[test]
fn tail_reservoir_records_without_allocating() {
    // The always-on exemplar reservoir rides every packet completion,
    // so its record path must be as clean as the tracers': both internal
    // sets are preallocated to capacity and replacement is in place.
    // (Reading the exemplars back — slowest()/sampled() — sorts into a
    // fresh Vec and is allowed to allocate; it runs once per report.)
    let mut tail = TailReservoir::paper();
    let n = allocs_during(|| {
        for i in 0..100_000u64 {
            let lat = Duration::from_ns(1_000 + (i * 7919) % 50_000);
            tail.record(64, i as u32, lat, Time::from_ns(i) + lat);
        }
    });
    assert_eq!(n, 0, "TailReservoir record path allocated {n} times");
    assert_eq!(tail.recorded(), 100_000);
    assert!(!tail.slowest().is_empty() && !tail.sampled().is_empty());
}

#[test]
fn warmed_ring_tracer_records_without_allocating() {
    let mut t = RingTracer::new(1024);
    let n = allocs_during(|| {
        for i in 0..100_000 {
            if t.enabled() {
                t.record(ev(i));
            }
        }
    });
    assert_eq!(n, 0, "warmed RingTracer allocated {n} times");
    assert_eq!(t.recorded(), 100_000);
}
