//! # hni-telemetry — the observability backbone
//!
//! The evaluation of the host-interface architecture is fundamentally an
//! *attribution* exercise: which stage of the pipeline — DMA,
//! segmentation, FIFO, link, reassembly, delivery — eats the cycles at
//! 622 Mb/s. This crate makes that attribution first-class instead of
//! ad-hoc per-run accounting:
//!
//! * [`TraceEvent`] — a fixed-size, `Copy` record of one cell- or
//!   packet-lifecycle event: simulated [`Time`], pipeline [`Stage`],
//!   span [`Phase`], VC, packet/cell sequence ids, and one
//!   stage-specific argument.
//! * [`Tracer`] — the sink trait the simulations emit into. The
//!   [`NullTracer`] is a no-op whose `enabled()` gate lets every
//!   instrumentation point vanish from the steady-state path: no
//!   allocation, no buffering, bit-identical simulation results.
//! * [`RingTracer`] / [`VecTracer`] — in-memory sinks: a bounded
//!   preallocated ring for always-on flight recording, and a growing
//!   buffer for full-run capture.
//! * [`MetricsRegistry`] — named `Counter` / `Histogram` / `RateMeter` /
//!   `OccupancyTracker` instances (reusing `hni-sim::stats`) under
//!   hierarchical names (`nic.tx.seg.cells`) with a deterministic text
//!   dump, derivable *from the trace stream itself*.
//! * [`jsonl`] — a line-per-event JSON export, the interchange format
//!   `report --trace <id>` emits.
//! * [`waterfall`] — the reducer that rebuilds the R-F3 per-stage
//!   latency breakdown directly from trace spans.
//! * [`Profiler`] / [`CycleProfiler`] — cycle accounting: every
//!   simulated interval charged to a `(Component, Activity)` pair, with
//!   windowed utilization [`TimeSeries`] and occupancy gauges; the
//!   [`NullProfiler`] makes the layer free when disabled, exactly like
//!   the tracer.
//! * [`attribution`] — ranks a [`Profile`]'s resources by utilization
//!   and computes the throughput ceiling each implies, naming the
//!   bottleneck (`report bottleneck <id>`).
//! * [`expfmt`] — a Prometheus-style text exposition of a profile
//!   snapshot; [`Profile::folded_stacks`] emits flamegraph-collapse
//!   lines for `report profile <id>`; histogram families and a
//!   conformance [`validate`](expfmt::validate)r for CI linting.
//!
//! The always-on telemetry plane (PR 6) adds the pieces that stay on
//! at line rate with bounded overhead:
//!
//! * [`HdrHist`] — fixed 64-bucket log₂ latency histograms with
//!   p50/p90/p99/p999 bands and exact max, mergeable across workers.
//! * [`topk`] — per-VC accounting at bounded cardinality: exact
//!   sharded volume counters plus a space-saving top-K heavy-hitter
//!   tracker, O(K) memory at million-VC scale.
//! * [`SamplingTracer`] — deterministic 1-in-N sampled tracing whose
//!   keep/drop decision is a pure function of cell identity, so
//!   sampled traces are byte-identical across reruns and worker
//!   counts.
//! * [`sentinel`] — the perf-regression sentinel behind
//!   `report perf --check`: `BENCH_HISTORY.jsonl` records and the
//!   tolerance comparison.
//! * [`json`] — the workspace's single JSON string escaper, shared by
//!   every hand-rolled JSON writer.
//!
//! The tail-anatomy layer turns "p99 regressed" into "this stage
//! regressed":
//!
//! * [`spans`] — [`PacketSpans`], the one-pass per-packet span index
//!   behind the waterfall, splitting every stage into queue-wait vs
//!   service time; partial lives (dropped packets) stay attributable.
//! * [`reservoir`] — [`TailReservoir`], the always-on zero-alloc tail
//!   exemplar reservoir next to `latency_hist` in every report:
//!   slowest-N packet identities plus a deterministic identity sample
//!   the p99+ cohort is carved from, byte-identical across reruns and
//!   `HNI_JOBS`.
//! * [`tailattr`] — [`attribute_tail`], the cohort critical-path
//!   attributor: tail vs median cohorts over the span index, stages
//!   ranked by excess, rendered as a blame table and Prometheus
//!   gauges (`report tail <id>`).

pub mod attribution;
pub mod event;
pub mod expfmt;
pub mod hist;
pub mod json;
pub mod jsonl;
pub mod metrics;
pub mod profiler;
pub mod reservoir;
pub mod sampler;
pub mod sentinel;
pub mod spans;
pub mod tailattr;
pub mod timeseries;
pub mod topk;
pub mod tracer;
pub mod waterfall;

pub use attribution::{attribute, Attribution, ResourceShare};
pub use event::{Phase, Stage, TraceEvent, NO_ID};
pub use hist::{HdrHist, Pcts};
pub use metrics::{Metric, MetricsRegistry};
pub use profiler::{
    Activity, Component, CycleProfiler, GaugeStats, NullProfiler, Profile, Profiler,
};
pub use reservoir::{Exemplar, TailReservoir};
pub use sampler::SamplingTracer;
pub use sentinel::{LoopSample, Regression, SentinelRecord};
pub use spans::{PacketLife, PacketSpans, SpanStage, STAGE_LABELS};
pub use tailattr::{attribute_tail, StageShare, TailAttribution};
pub use timeseries::TimeSeries;
pub use topk::{TopEntry, TopK, VcMetrics, VcShards};
pub use tracer::{NullTracer, RingTracer, Tracer, VecTracer};
pub use waterfall::{StageLatency, Waterfall};

pub use hni_sim::{Duration, Time};
