//! The latency-waterfall reducer: rebuild the R-F3 per-stage breakdown
//! of one packet's life directly from trace events, instead of
//! hand-maintained accounting inside the simulations.
//!
//! The stage edges telescope — each stage starts where the previous one
//! ended — so the stage durations sum *exactly* to the measured
//! descriptor→completion latency. The mapping mirrors the analytic
//! decomposition in `hni-analysis::latency`:
//!
//! ```text
//! tx setup       descriptor fetch → setup span exit
//! tx 1st burst   → first TX DMA burst done
//! tx 1st cell    → first segmentation span exit
//! serialize      → last cell handed to the framer
//! propagate      → last cell arrival at the receiver
//! rx cell        → last per-cell receive work exit
//! validate       → validation span exit
//! deliver dma    → last delivery DMA burst done
//! complete       → completion span exit
//! ```

use crate::event::TraceEvent;
use crate::spans::PacketSpans;
use hni_sim::Duration;
use std::fmt::Write as _;

/// One stage of a packet's latency waterfall.
#[derive(Clone, Copy, Debug)]
pub struct StageLatency {
    /// Stage label (matches the R-F3 table columns).
    pub label: &'static str,
    /// Time spent in the stage.
    pub duration: Duration,
}

/// A packet's per-stage latency breakdown, reduced from a trace.
#[derive(Clone, Debug)]
pub struct Waterfall {
    /// Packet sequence id the waterfall describes.
    pub pkt: u32,
    /// Stage durations in path order (telescoping).
    pub stages: Vec<StageLatency>,
    /// Descriptor fetch → completion.
    pub total: Duration,
}

impl Waterfall {
    /// Reduce the waterfall of packet `pkt` from a trace stream.
    ///
    /// Returns `None` when the trace does not contain the packet's full
    /// life (descriptor fetch through completion) — e.g. the packet was
    /// lost, or tracing was off.
    ///
    /// One-shot convenience over [`PacketSpans`]: builds the index and
    /// extracts a single packet. Callers asking about more than one
    /// packet should build the index once and query it repeatedly —
    /// this entry point re-reduces the whole slice per call.
    pub fn from_events(events: &[TraceEvent], pkt: u32) -> Option<Waterfall> {
        PacketSpans::from_events(events).waterfall(pkt)
    }

    /// Sum of stage durations (equals `total` by construction).
    pub fn stage_sum(&self) -> Duration {
        self.stages
            .iter()
            .fold(Duration::ZERO, |acc, s| acc + s.duration)
    }

    /// Duration of the stage labelled `label`, if present.
    pub fn stage(&self, label: &str) -> Option<Duration> {
        self.stages
            .iter()
            .find(|s| s.label == label)
            .map(|s| s.duration)
    }

    /// Text rendering: one line per stage plus the total, in µs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "latency waterfall, packet {}", self.pkt);
        for s in &self.stages {
            let _ = writeln!(out, "  {:<12} {:>10.3} us", s.label, s.duration.as_us_f64());
        }
        let _ = writeln!(out, "  {:<12} {:>10.3} us", "TOTAL", self.total.as_us_f64());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Phase, Stage};
    use hni_sim::Time;

    fn synthetic_trace() -> Vec<TraceEvent> {
        // A hand-built single-packet life with known edges (ns).
        let e = |ns: u64, st, ph| TraceEvent {
            time: Time::from_ns(ns),
            stage: st,
            phase: ph,
            vc: 64,
            pkt: 0,
            cell: crate::NO_ID,
            arg: 0,
        };
        vec![
            e(0, Stage::TxDescriptor, Phase::Instant),
            e(0, Stage::TxSetup, Phase::Enter),
            e(100, Stage::TxSetup, Phase::Exit),
            e(250, Stage::TxDmaBurst, Phase::Instant),
            e(200, Stage::TxSegment, Phase::Enter),
            e(400, Stage::TxSegment, Phase::Exit),
            e(1_100, Stage::TxFramer, Phase::Instant),
            e(1_800, Stage::TxFramer, Phase::Instant),
            e(6_800, Stage::RxCellArrive, Phase::Instant),
            e(6_900, Stage::RxCell, Phase::Exit),
            e(7_000, Stage::RxValidate, Phase::Exit),
            e(7_500, Stage::RxDmaBurst, Phase::Instant),
            e(7_600, Stage::RxComplete, Phase::Exit),
        ]
    }

    #[test]
    fn stages_telescope_to_total() {
        let w = Waterfall::from_events(&synthetic_trace(), 0).expect("complete life");
        assert_eq!(w.total, Duration::from_ns(7_600));
        assert_eq!(w.stage_sum(), w.total);
        assert_eq!(w.stage("tx setup"), Some(Duration::from_ns(100)));
        assert_eq!(w.stage("tx 1st burst"), Some(Duration::from_ns(150)));
        assert_eq!(w.stage("tx 1st cell"), Some(Duration::from_ns(150)));
        assert_eq!(w.stage("serialize"), Some(Duration::from_ns(1_400)));
        assert_eq!(w.stage("propagate"), Some(Duration::from_ns(5_000)));
        assert_eq!(w.stage("complete"), Some(Duration::from_ns(100)));
    }

    #[test]
    fn missing_life_returns_none() {
        assert!(Waterfall::from_events(&[], 0).is_none());
        // Wrong packet id.
        assert!(Waterfall::from_events(&synthetic_trace(), 1).is_none());
    }

    #[test]
    fn render_lists_all_stages() {
        let w = Waterfall::from_events(&synthetic_trace(), 0).unwrap();
        let r = w.render();
        for label in [
            "tx setup",
            "tx 1st burst",
            "tx 1st cell",
            "serialize",
            "propagate",
            "rx cell",
            "validate",
            "deliver dma",
            "complete",
            "TOTAL",
        ] {
            assert!(r.contains(label), "missing {label} in:\n{r}");
        }
    }
}
