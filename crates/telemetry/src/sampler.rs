//! Deterministic 1-in-N sampled tracing.
//!
//! Full-fidelity tracing cannot stay on at line rate: 9180-byte SDUs at
//! 622 Mb/s are ~1.6M cells/s, and every cell emits several events. The
//! [`SamplingTracer`] keeps the trace format usable at that rate by
//! keeping roughly one cell in N — but the keep/drop decision is a
//! **pure function of the event's identity**, not of arrival order:
//!
//! ```text
//! keep(vc, pkt, cell) = mix(seed ⊕ mix(vc‖pkt) ⊕ mix(cell)) % N == 0
//! ```
//!
//! Because no stream position or RNG state is involved, the same cell is
//! kept or dropped regardless of which `par_sweep` worker processes it,
//! how many workers there are (`HNI_JOBS` 1 vs 4), or how many times the
//! run is repeated — sampled traces are byte-identical across all of
//! them. Events that carry no cell/packet identity (run-level instants)
//! are always kept: they are rare and anchor the trace.
//!
//! The decision is also *per-packet coherent for whole-cell groups*
//! only in the sense that a given (vc, pkt, cell) triple always resolves
//! the same way — every stage a sampled cell passes through appears in
//! the trace, so spans still pair up.

use crate::event::{TraceEvent, NO_ID};
use crate::tracer::Tracer;

/// Fixed 64-bit finalizer (splitmix64) — the same keyed mix everywhere,
/// so sampling is reproducible across platforms and versions. Shared
/// with the tail exemplar reservoir, which samples packet identities
/// under the same guarantee.
#[inline]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A tracer adaptor that forwards ~1-in-N events to an inner sink,
/// chosen by a seeded content hash of the event identity.
#[derive(Clone, Debug)]
pub struct SamplingTracer<T: Tracer> {
    inner: T,
    seed: u64,
    one_in: u64,
    seen: u64,
    kept: u64,
}

impl<T: Tracer> SamplingTracer<T> {
    /// Wrap `inner`, keeping one event identity in `one_in` (clamped to
    /// ≥ 1; 1 keeps everything) under `seed`.
    pub fn new(inner: T, one_in: u64, seed: u64) -> Self {
        Self {
            inner,
            seed,
            one_in: one_in.max(1),
            seen: 0,
            kept: 0,
        }
    }

    /// Pure keep/drop decision for an identity triple under this
    /// sampler's seed and rate. Order- and worker-independent.
    #[inline]
    pub fn keeps(&self, vc: u32, pkt: u32, cell: u32) -> bool {
        if self.one_in == 1 {
            return true;
        }
        // Run-level events with no identity always pass: they are rare
        // (setup, report boundaries) and anchor the sampled trace.
        if vc == NO_ID && pkt == NO_ID && cell == NO_ID {
            return true;
        }
        let id = ((vc as u64) << 32 | pkt as u64) ^ mix64(cell as u64);
        mix64(self.seed ^ mix64(id)).is_multiple_of(self.one_in)
    }

    /// Events offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Events forwarded to the inner sink.
    pub fn kept(&self) -> u64 {
        self.kept
    }

    /// The sampling rate denominator.
    pub fn one_in(&self) -> u64 {
        self.one_in
    }

    /// Borrow the inner sink.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Consume the adaptor, returning the inner sink.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: Tracer> Tracer for SamplingTracer<T> {
    #[inline]
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    #[inline]
    fn record(&mut self, ev: TraceEvent) {
        self.seen += 1;
        if self.keeps(ev.vc, ev.pkt, ev.cell) {
            self.kept += 1;
            self.inner.record(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Stage;
    use crate::tracer::VecTracer;
    use hni_sim::Time;

    fn ev(vc: u32, pkt: u32, cell: u32) -> TraceEvent {
        let mut e = TraceEvent::instant(Time::from_ns(cell as u64), Stage::TxFramer);
        e.vc = vc;
        e.pkt = pkt;
        e.cell = cell;
        e
    }

    fn kept_cells(order: &[(u32, u32, u32)], one_in: u64, seed: u64) -> Vec<u32> {
        let mut t = SamplingTracer::new(VecTracer::new(), one_in, seed);
        for &(vc, pkt, cell) in order {
            t.record(ev(vc, pkt, cell));
        }
        t.into_inner()
            .into_events()
            .iter()
            .map(|e| e.cell)
            .collect()
    }

    #[test]
    fn decision_is_order_independent() {
        let forward: Vec<(u32, u32, u32)> = (0..4096).map(|c| (7, c / 192, c)).collect();
        let mut shuffled = forward.clone();
        shuffled.reverse();
        let mut interleaved: Vec<(u32, u32, u32)> = Vec::new();
        for pair in forward.chunks(2) {
            interleaved.extend(pair.iter().rev());
        }
        let mut a = kept_cells(&forward, 64, 42);
        let mut b = kept_cells(&shuffled, 64, 42);
        let mut c = kept_cells(&interleaved, 64, 42);
        a.sort_unstable();
        b.sort_unstable();
        c.sort_unstable();
        assert_eq!(a, b, "reversal changed the sampled set");
        assert_eq!(a, c, "interleave changed the sampled set");
        assert!(!a.is_empty());
    }

    #[test]
    fn rerun_is_byte_identical() {
        let order: Vec<(u32, u32, u32)> = (0..2048).map(|c| (3, c / 100, c)).collect();
        assert_eq!(kept_cells(&order, 128, 9), kept_cells(&order, 128, 9));
    }

    #[test]
    fn seed_and_rate_change_the_sample() {
        let order: Vec<(u32, u32, u32)> = (0..4096).map(|c| (1, 0, c)).collect();
        let s1 = kept_cells(&order, 64, 1);
        let s2 = kept_cells(&order, 64, 2);
        assert_ne!(s1, s2, "different seeds picked identical samples");
        let all = kept_cells(&order, 1, 1);
        assert_eq!(all.len(), 4096, "one_in=1 must keep everything");
    }

    #[test]
    fn rate_is_roughly_one_in_n() {
        let order: Vec<(u32, u32, u32)> = (0..100_000).map(|c| (c % 977, c / 977, c)).collect();
        let kept = kept_cells(&order, 1024, 7).len();
        // Binomial(100k, 1/1024): mean ~97.7, sd ~9.9. Allow ±5 sd.
        assert!(
            (48..=148).contains(&kept),
            "kept {kept} of 100k at 1-in-1024"
        );
    }

    #[test]
    fn identityless_events_always_pass_and_counters_track() {
        let mut t = SamplingTracer::new(VecTracer::new(), 1_000_000, 5);
        t.record(TraceEvent::instant(Time::ZERO, Stage::TxSetup));
        for c in 0..100 {
            t.record(ev(1, 0, c));
        }
        assert_eq!(t.seen(), 101);
        assert_eq!(t.kept(), t.inner().len() as u64);
        assert!(t.kept() >= 1, "identityless instant must be kept");
        assert_eq!(t.inner().events()[0].stage, Stage::TxSetup);
    }

    #[test]
    fn null_inner_stays_disabled() {
        let t = SamplingTracer::new(crate::tracer::NullTracer, 8, 0);
        assert!(!t.enabled());
    }
}
