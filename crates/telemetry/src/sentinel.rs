//! Perf-regression sentinel: the record format and comparison logic
//! behind `report perf --check`.
//!
//! Every `report perf` run appends one JSON line (schema
//! `hni-bench-history/1`) to `BENCH_HISTORY.jsonl`; `--check` parses
//! the most recent compatible line as the baseline and compares each
//! named hot loop's median wall time against it. A loop has regressed
//! when
//!
//! ```text
//! current_median_ns > baseline_median_ns × (1 + tolerance)
//! ```
//!
//! Wall-clock numbers are noisy — on shared CI runners, very noisy — so
//! the tolerance is explicit and caller-chosen rather than baked in:
//! the deterministic unit tests here pin the *logic* (a 20% slowdown at
//! 10% tolerance must trip, a 5% one must not), while `ci.sh` runs the
//! live smoke with a generous tolerance so scheduling jitter cannot
//! fail a build. Comparison is by loop *name*; loops present on only
//! one side are ignored (adding a benchmark must not trip the
//! sentinel).
//!
//! This module owns only the format and the decision — reading and
//! writing the history file is the bench binary's job, keeping
//! `hni-telemetry` free of filesystem I/O.

use crate::json;
use std::fmt::Write as _;

/// Schema tag every history line starts with.
pub const HISTORY_SCHEMA: &str = "hni-bench-history/1";

/// One hot loop's headline number in a history record.
#[derive(Clone, Debug, PartialEq)]
pub struct LoopSample {
    /// Benchmark name (e.g. `e2e_cells`).
    pub name: String,
    /// Median wall time per op, nanoseconds.
    pub median_ns: f64,
}

/// One `report perf` run as recorded in `BENCH_HISTORY.jsonl`.
#[derive(Clone, Debug, PartialEq)]
pub struct SentinelRecord {
    /// `"fast"` or `"full"` — baselines only compare within a mode,
    /// since fast-mode timings carry deliberately more noise.
    pub mode: String,
    /// The run's hot loops.
    pub samples: Vec<LoopSample>,
}

/// One detected regression.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// Hot loop name.
    pub name: String,
    /// Baseline median, ns.
    pub baseline_ns: f64,
    /// Current median, ns.
    pub current_ns: f64,
    /// current / baseline (> 1 + tolerance by definition).
    pub ratio: f64,
}

impl SentinelRecord {
    /// Serialise as one JSONL line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut s = String::with_capacity(64 + self.samples.len() * 48);
        let _ = write!(
            s,
            "{{\"schema\":{},\"mode\":{},\"loops\":[",
            json::quote(HISTORY_SCHEMA),
            json::quote(&self.mode)
        );
        for (i, l) in self.samples.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let median = if l.median_ns.is_finite() {
                l.median_ns
            } else {
                0.0
            };
            let _ = write!(
                s,
                "{{\"name\":{},\"median_ns\":{:.1}}}",
                json::quote(&l.name),
                median
            );
        }
        s.push_str("]}");
        s
    }

    /// Parse one history line. Returns `None` on any malformed or
    /// wrong-schema input — the sentinel skips lines it cannot read
    /// rather than failing the whole check on one corrupt record.
    pub fn parse_line(line: &str) -> Option<SentinelRecord> {
        let line = line.trim();
        if !line.starts_with('{') || !line.ends_with('}') {
            return None;
        }
        if scan_string_field(line, "schema")? != HISTORY_SCHEMA {
            return None;
        }
        let mode = scan_string_field(line, "mode")?;
        let loops_at = line.find("\"loops\":[")?;
        let body = &line[loops_at + "\"loops\":[".len()..];
        let mut samples = Vec::new();
        let mut rest = body;
        while let Some(obj_at) = rest.find('{') {
            let obj_end = rest[obj_at..].find('}')? + obj_at;
            let obj = &rest[obj_at..=obj_end];
            samples.push(LoopSample {
                name: scan_string_field(obj, "name")?,
                median_ns: scan_number_field(obj, "median_ns")?,
            });
            rest = &rest[obj_end + 1..];
        }
        Some(SentinelRecord { mode, samples })
    }

    /// The most recent parseable record in a history document whose
    /// mode matches, scanning bottom-up.
    pub fn last_in_history(history: &str, mode: &str) -> Option<SentinelRecord> {
        history
            .lines()
            .rev()
            .filter_map(SentinelRecord::parse_line)
            .find(|r| r.mode == mode)
    }
}

/// Minimal scanner for `"key":"value"` in a line we wrote ourselves.
/// Handles the escapes [`json::escape_into`] can produce.
fn scan_string_field(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let at = obj.find(&pat)? + pat.len();
    let mut out = String::new();
    let mut chars = obj[at..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                'b' => out.push('\u{0008}'),
                'f' => out.push('\u{000C}'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

/// Minimal scanner for `"key":<number>`.
fn scan_number_field(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = obj.find(&pat)? + pat.len();
    let tail = &obj[at..];
    let end = tail
        .find(|c: char| !matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Compare `current` against `baseline`: any loop whose current median
/// exceeds the baseline by more than `tolerance` (fractional, e.g. 0.1
/// = +10%) is reported. Loops on only one side are ignored.
pub fn check(
    baseline: &SentinelRecord,
    current: &SentinelRecord,
    tolerance: f64,
) -> Vec<Regression> {
    let mut out = Vec::new();
    for cur in &current.samples {
        let Some(base) = baseline.samples.iter().find(|b| b.name == cur.name) else {
            continue;
        };
        if base.median_ns <= 0.0 {
            continue;
        }
        let ratio = cur.median_ns / base.median_ns;
        if ratio > 1.0 + tolerance {
            out.push(Regression {
                name: cur.name.clone(),
                baseline_ns: base.median_ns,
                current_ns: cur.median_ns,
                ratio,
            });
        }
    }
    out
}

/// Render a regression list for the terminal (empty string when clean).
pub fn render_regressions(regs: &[Regression], tolerance: f64) -> String {
    if regs.is_empty() {
        return String::new();
    }
    let mut s = format!(
        "PERF REGRESSION: {} hot loop{} beyond +{:.0}% tolerance\n",
        regs.len(),
        if regs.len() == 1 { "" } else { "s" },
        tolerance * 100.0
    );
    for r in regs {
        let _ = writeln!(
            s,
            "  {:<18} baseline {:>10.1} ns/op -> current {:>10.1} ns/op ({:+.1}%)",
            r.name,
            r.baseline_ns,
            r.current_ns,
            (r.ratio - 1.0) * 100.0
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(mode: &str, pairs: &[(&str, f64)]) -> SentinelRecord {
        SentinelRecord {
            mode: mode.to_string(),
            samples: pairs
                .iter()
                .map(|&(n, m)| LoopSample {
                    name: n.to_string(),
                    median_ns: m,
                })
                .collect(),
        }
    }

    #[test]
    fn line_round_trips() {
        let r = rec("fast", &[("e2e_cells", 1234.5), ("aal5_sar_slab", 88.0)]);
        let line = r.to_line();
        assert!(
            line.starts_with("{\"schema\":\"hni-bench-history/1\""),
            "{line}"
        );
        let parsed = SentinelRecord::parse_line(&line).expect("round trip");
        assert_eq!(parsed, r);
    }

    #[test]
    fn twenty_percent_regression_trips_at_ten_percent_tolerance() {
        let base = rec("fast", &[("e2e_cells", 1000.0), ("hec", 500.0)]);
        let cur = rec("fast", &[("e2e_cells", 1200.0), ("hec", 510.0)]);
        let regs = check(&base, &cur, 0.10);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert_eq!(regs[0].name, "e2e_cells");
        assert!((regs[0].ratio - 1.2).abs() < 1e-9);
        let text = render_regressions(&regs, 0.10);
        assert!(
            text.contains("PERF REGRESSION") && text.contains("e2e_cells"),
            "{text}"
        );
    }

    #[test]
    fn small_drift_and_improvements_pass() {
        let base = rec("fast", &[("a", 1000.0), ("b", 1000.0)]);
        let cur = rec("fast", &[("a", 1050.0), ("b", 600.0)]);
        assert!(check(&base, &cur, 0.10).is_empty());
        assert_eq!(render_regressions(&[], 0.1), "");
    }

    #[test]
    fn new_and_removed_loops_are_ignored() {
        let base = rec("fast", &[("old_loop", 100.0)]);
        let cur = rec("fast", &[("new_loop", 9e9)]);
        assert!(check(&base, &cur, 0.0).is_empty());
    }

    #[test]
    fn history_scan_takes_last_matching_mode_and_skips_garbage() {
        let mut hist = String::new();
        hist.push_str("not json at all\n");
        hist.push_str(&rec("full", &[("a", 5.0)]).to_line());
        hist.push('\n');
        hist.push_str(&rec("fast", &[("a", 1.0)]).to_line());
        hist.push('\n');
        hist.push_str(&rec("fast", &[("a", 2.0)]).to_line());
        hist.push_str("\n{\"schema\":\"other/9\",\"mode\":\"fast\",\"loops\":[]}\n");
        let last = SentinelRecord::last_in_history(&hist, "fast").expect("baseline");
        assert_eq!(last.samples[0].median_ns, 2.0);
        let full = SentinelRecord::last_in_history(&hist, "full").expect("full baseline");
        assert_eq!(full.samples[0].median_ns, 5.0);
        assert!(SentinelRecord::last_in_history("", "fast").is_none());
    }

    #[test]
    fn older_history_without_overhead_keys_is_tolerated() {
        // A baseline written before the overhead-factor samples existed
        // — and carrying an unknown top-level field a future writer
        // might add. It must still parse, and a current record with the
        // new names must compare clean against it (one-sided names are
        // ignored, never treated as regressions).
        let line = "{\"schema\":\"hni-bench-history/1\",\"mode\":\"fast\",\
                    \"machine\":\"ci-03\",\"loops\":[\
                    {\"name\":\"e2e_cells\",\"median_ns\":1000.0}]}";
        let old = SentinelRecord::parse_line(line).expect("older line parses");
        assert_eq!(old.samples.len(), 1);
        let cur = rec(
            "fast",
            &[
                ("e2e_cells", 1010.0),
                ("e2e_cells_reservoir", 1015.0),
                ("telemetry_overhead_factor", 1.02),
                ("reservoir_overhead_factor", 1.01),
            ],
        );
        assert!(check(&old, &cur, 0.10).is_empty());
        // ... and the new keys do participate once both sides have them.
        let base = rec("fast", &[("reservoir_overhead_factor", 1.01)]);
        let slow = rec("fast", &[("reservoir_overhead_factor", 1.50)]);
        assert_eq!(check(&base, &slow, 0.10).len(), 1);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "",
            "{}",
            "{\"schema\":\"hni-bench-history/1\"}",
            "{\"schema\":\"hni-bench-history/1\",\"mode\":\"fast\"}",
            "[1,2,3]",
        ] {
            assert!(SentinelRecord::parse_line(bad).is_none(), "{bad:?}");
        }
    }

    #[test]
    fn escaped_names_survive_the_round_trip() {
        let r = rec("fast", &[("weird \"name\"\nwith\\stuff", 7.0)]);
        let parsed = SentinelRecord::parse_line(&r.to_line()).expect("parse");
        assert_eq!(parsed, r);
    }

    #[test]
    fn zero_baseline_never_divides() {
        let base = rec("fast", &[("a", 0.0)]);
        let cur = rec("fast", &[("a", 100.0)]);
        assert!(check(&base, &cur, 0.1).is_empty());
    }
}
