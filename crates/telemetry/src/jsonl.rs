//! JSONL export: one JSON object per trace event, newline-separated.
//!
//! Schema (fields with sentinel [`NO_ID`] are omitted):
//!
//! ```json
//! {"t_ps":1234,"stage":"tx.seg","ph":"B","vc":64,"pkt":0,"cell":3,"arg":48}
//! ```
//!
//! * `t_ps` — simulated time in picoseconds (u64)
//! * `stage` — hierarchical stage name ([`Stage::name`](crate::Stage::name))
//! * `ph` — `"B"` span begin, `"E"` span end, `"I"` instant
//! * `vc` — packed VPI/VCI (`VcId::cam_key`), when known
//! * `pkt` — packet sequence id (workload index), when known
//! * `cell` — cell sequence id, when known
//! * `arg` — stage-specific argument, omitted when zero

use crate::event::{TraceEvent, NO_ID};
use crate::json;
use std::fmt::Write as _;

/// Append one event as a JSON line (no trailing newline).
pub fn write_event(out: &mut String, ev: &TraceEvent) {
    // Stage names are static identifiers today, but they pass through
    // the shared escaper anyway: every JSON string in the workspace
    // goes through one implementation (see `json`).
    let _ = write!(
        out,
        "{{\"t_ps\":{},\"stage\":{},\"ph\":\"{}\"",
        ev.time.as_ps(),
        json::quote(ev.stage.name()),
        ev.phase.code()
    );
    if ev.vc != NO_ID {
        let _ = write!(out, ",\"vc\":{}", ev.vc);
    }
    if ev.pkt != NO_ID {
        let _ = write!(out, ",\"pkt\":{}", ev.pkt);
    }
    if ev.cell != NO_ID {
        let _ = write!(out, ",\"cell\":{}", ev.cell);
    }
    if ev.arg != 0 {
        let _ = write!(out, ",\"arg\":{}", ev.arg);
    }
    out.push('}');
}

/// Render a whole stream as JSONL (one event per line).
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 64);
    for ev in events {
        write_event(&mut out, ev);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Stage;
    use hni_sim::Time;

    #[test]
    fn full_event_renders_all_fields() {
        let ev = TraceEvent::enter(Time::from_ns(2), Stage::RxCell)
            .vc(0x40)
            .pkt(1)
            .cell(9)
            .arg(48);
        let mut s = String::new();
        write_event(&mut s, &ev);
        assert_eq!(
            s,
            "{\"t_ps\":2000,\"stage\":\"rx.cell\",\"ph\":\"B\",\"vc\":64,\"pkt\":1,\"cell\":9,\"arg\":48}"
        );
    }

    #[test]
    fn sentinel_fields_omitted() {
        let ev = TraceEvent::instant(Time::ZERO, Stage::Isr);
        let mut s = String::new();
        write_event(&mut s, &ev);
        assert_eq!(s, "{\"t_ps\":0,\"stage\":\"host.isr\",\"ph\":\"I\"}");
    }

    #[test]
    fn jsonl_is_line_per_event() {
        let evs = vec![
            TraceEvent::instant(Time::ZERO, Stage::TxDescriptor).pkt(0),
            TraceEvent::instant(Time::from_ns(1), Stage::TxFramer).cell(0),
        ];
        let s = to_jsonl(&evs);
        assert_eq!(s.lines().count(), 2);
        for line in s.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }
}
