//! `PacketSpans` — the one-pass per-packet span index.
//!
//! [`Waterfall::from_events`] answers "why was *this* packet slow" by
//! rescanning the whole event slice once per stage edge (9+ linear
//! passes), which is fine for one packet and hopeless for cohort
//! questions ("why are the p99 packets slow"). This index reduces a
//! trace stream **once** into per-packet [`PacketLife`] records — every
//! stage edge the waterfall needs, plus the `Enter` clocks that split
//! each stage into **queue-wait vs service** time:
//!
//! ```text
//! stage total = edge(prev stage end → this stage end)   (telescoping)
//! wait        = Enter − stage start (time queued before the engine)
//! service     = total − wait        (time actually being worked on)
//! ```
//!
//! Stages recorded only as instants (DMA bursts, framer slots, the
//! propagation edge) have no `Enter`: their whole duration counts as
//! service. Lives that never complete (lost packets, tracing switched
//! off mid-flight) still index — the waterfall is `None`, but every
//! stage whose edges *did* happen remains attributable via
//! [`PacketLife::breakdown`].

use crate::event::{Phase, Stage, TraceEvent, NO_ID};
use crate::waterfall::{StageLatency, Waterfall};
use hni_sim::{Duration, Time};

/// The waterfall's stage labels, in path order.
pub const STAGE_LABELS: [&str; 9] = [
    "tx setup",
    "tx 1st burst",
    "tx 1st cell",
    "serialize",
    "propagate",
    "rx cell",
    "validate",
    "deliver dma",
    "complete",
];

/// One stage of a packet's life, split into queue-wait and service.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanStage {
    /// Stage label (matches [`STAGE_LABELS`] / the R-F3 columns).
    pub label: &'static str,
    /// Time queued before the stage's engine picked the work up.
    pub wait: Duration,
    /// Time being worked on (`total − wait`).
    pub service: Duration,
}

impl SpanStage {
    /// The stage's telescoping total (`wait + service`).
    pub fn total(&self) -> Duration {
        self.wait + self.service
    }
}

/// Every edge of one packet's life the trace contained. `first_*`
/// fields keep the earliest matching event, `last_*` the latest — the
/// same `find`/`rfind` semantics the per-packet waterfall scan used.
#[derive(Clone, Copy, Debug, Default)]
pub struct PacketLife {
    /// First `TxDescriptor` (descriptor fetch / packet arrival).
    pub desc: Option<Time>,
    /// First `TxSetup` `Enter`.
    pub setup_enter: Option<Time>,
    /// First `TxSetup` `Exit`.
    pub setup_exit: Option<Time>,
    /// First `TxDmaBurst` (zero-length packets have none).
    pub first_burst: Option<Time>,
    /// First `TxSegment` `Enter`.
    pub seg_enter: Option<Time>,
    /// First `TxSegment` `Exit`.
    pub seg_exit: Option<Time>,
    /// Last `TxFramer` (last cell on the wire).
    pub last_wire: Option<Time>,
    /// Last `RxCellArrive` (last cell at the receiver).
    pub last_arrive: Option<Time>,
    /// Last `RxCell` `Enter` (the engine picking up the last cell).
    pub rx_cell_enter: Option<Time>,
    /// Last `RxCell` `Exit`.
    pub rx_cell_exit: Option<Time>,
    /// First `RxValidate` `Enter`.
    pub validate_enter: Option<Time>,
    /// First `RxValidate` `Exit`.
    pub validate_exit: Option<Time>,
    /// Last `RxDmaBurst` (packets delivered without DMA have none).
    pub last_dma: Option<Time>,
    /// First `RxComplete` `Enter`.
    pub complete_enter: Option<Time>,
    /// First `RxComplete` `Exit`.
    pub complete_exit: Option<Time>,
}

impl PacketLife {
    fn absorb(&mut self, ev: &TraceEvent) {
        let first = |slot: &mut Option<Time>| {
            if slot.is_none() {
                *slot = Some(ev.time);
            }
        };
        let last = |slot: &mut Option<Time>| *slot = Some(ev.time);
        match (ev.stage, ev.phase) {
            (Stage::TxDescriptor, _) => first(&mut self.desc),
            (Stage::TxSetup, Phase::Enter) => first(&mut self.setup_enter),
            (Stage::TxSetup, Phase::Exit) => first(&mut self.setup_exit),
            (Stage::TxDmaBurst, _) => first(&mut self.first_burst),
            (Stage::TxSegment, Phase::Enter) => first(&mut self.seg_enter),
            (Stage::TxSegment, Phase::Exit) => first(&mut self.seg_exit),
            (Stage::TxFramer, _) => last(&mut self.last_wire),
            (Stage::RxCellArrive, _) => last(&mut self.last_arrive),
            (Stage::RxCell, Phase::Enter) => last(&mut self.rx_cell_enter),
            (Stage::RxCell, Phase::Exit) => last(&mut self.rx_cell_exit),
            (Stage::RxValidate, Phase::Enter) => first(&mut self.validate_enter),
            (Stage::RxValidate, Phase::Exit) => first(&mut self.validate_exit),
            (Stage::RxDmaBurst, _) => last(&mut self.last_dma),
            (Stage::RxComplete, Phase::Enter) => first(&mut self.complete_enter),
            (Stage::RxComplete, Phase::Exit) => first(&mut self.complete_exit),
            _ => {}
        }
    }

    /// The nine telescoping stage edges, in path order, with the
    /// fallbacks the waterfall defines (no TX DMA → previous edge; no
    /// delivery DMA → validate edge). `None` entries are stages whose
    /// closing edge the trace never contained.
    fn edges(&self) -> [Option<(Time, Option<Time>)>; 9] {
        // (closing edge, Enter clock that splits wait from service).
        let first_burst = self.first_burst.or(self.setup_exit);
        let last_dma = self.last_dma.or(self.validate_exit);
        [
            self.setup_exit.map(|t| (t, self.setup_enter)),
            first_burst.map(|t| (t, None)),
            self.seg_exit.map(|t| (t, self.seg_enter)),
            self.last_wire.map(|t| (t, None)),
            self.last_arrive.map(|t| (t, None)),
            self.rx_cell_exit.map(|t| (t, self.rx_cell_enter)),
            self.validate_exit.map(|t| (t, self.validate_enter)),
            last_dma.map(|t| (t, None)),
            self.complete_exit.map(|t| (t, self.complete_enter)),
        ]
    }

    /// Whether the trace contained this packet's full life —
    /// descriptor fetch through completion.
    pub fn is_complete(&self) -> bool {
        self.desc.is_some() && self.edges().iter().all(Option::is_some)
    }

    /// Descriptor fetch → completion, when the life is complete.
    pub fn total(&self) -> Option<Duration> {
        Some(self.complete_exit?.saturating_since(self.desc?))
    }

    /// The wait/service breakdown of every *attributable* stage: the
    /// leading run of stages whose closing edges the trace contained.
    /// A complete life yields all nine stages, telescoping exactly to
    /// [`total`](Self::total); a dropped packet yields the prefix up to
    /// where its life ended — still attributable, per stage.
    pub fn breakdown(&self) -> Vec<SpanStage> {
        let mut out = Vec::with_capacity(9);
        let Some(mut prev) = self.desc else {
            return out;
        };
        for (label, edge) in STAGE_LABELS.iter().zip(self.edges()) {
            let Some((end, enter)) = edge else { break };
            let total = end.saturating_since(prev);
            let wait = match enter {
                Some(t) => {
                    let w = t.saturating_since(prev);
                    if w > total {
                        total
                    } else {
                        w
                    }
                }
                None => Duration::ZERO,
            };
            out.push(SpanStage {
                label,
                wait,
                service: total - wait,
            });
            prev = end;
        }
        out
    }
}

/// Per-packet span index over a trace stream: one O(events) reduction
/// pass, then O(1) access to any packet's life.
#[derive(Clone, Debug, Default)]
pub struct PacketSpans {
    lives: Vec<Option<PacketLife>>,
}

impl PacketSpans {
    /// Reduce a trace stream into the index. Events without a packet
    /// identity (run-level instants, pure cell events) are skipped.
    pub fn from_events(events: &[TraceEvent]) -> PacketSpans {
        let mut lives: Vec<Option<PacketLife>> = Vec::new();
        for ev in events {
            if ev.pkt == NO_ID {
                continue;
            }
            let idx = ev.pkt as usize;
            if idx >= lives.len() {
                lives.resize(idx + 1, None);
            }
            lives[idx]
                .get_or_insert_with(PacketLife::default)
                .absorb(ev);
        }
        PacketSpans { lives }
    }

    /// The indexed life of packet `pkt`, if any of its events appeared.
    pub fn life(&self, pkt: u32) -> Option<&PacketLife> {
        self.lives.get(pkt as usize)?.as_ref()
    }

    /// Packet ids with at least one indexed event, ascending.
    pub fn packets(&self) -> impl Iterator<Item = u32> + '_ {
        self.lives
            .iter()
            .enumerate()
            .filter(|(_, l)| l.is_some())
            .map(|(i, _)| i as u32)
    }

    /// Number of packets with at least one indexed event.
    pub fn len(&self) -> usize {
        self.lives.iter().filter(|l| l.is_some()).count()
    }

    /// True when no packet left any event.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The R-F3 waterfall of packet `pkt`, or `None` when the trace
    /// does not contain its full life. Byte-identical to the old
    /// per-packet scan: same edges, same fallbacks, same labels.
    pub fn waterfall(&self, pkt: u32) -> Option<Waterfall> {
        let life = self.life(pkt)?;
        let desc = life.desc?;
        let edges = life.edges();
        let mut stages = Vec::with_capacity(9);
        let mut prev = desc;
        for (label, edge) in STAGE_LABELS.iter().zip(edges) {
            let (end, _) = edge?;
            stages.push(StageLatency {
                label,
                duration: end.saturating_since(prev),
            });
            prev = end;
        }
        Some(Waterfall {
            pkt,
            stages,
            total: prev.saturating_since(desc),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(ns: u64, st: Stage, ph: Phase, pkt: u32) -> TraceEvent {
        TraceEvent {
            time: Time::from_ns(ns),
            stage: st,
            phase: ph,
            vc: 64,
            pkt,
            cell: NO_ID,
            arg: 0,
        }
    }

    fn full_life(pkt: u32, base_ns: u64) -> Vec<TraceEvent> {
        let b = base_ns;
        vec![
            e(b, Stage::TxDescriptor, Phase::Instant, pkt),
            e(b + 20, Stage::TxSetup, Phase::Enter, pkt),
            e(b + 100, Stage::TxSetup, Phase::Exit, pkt),
            e(b + 250, Stage::TxDmaBurst, Phase::Instant, pkt),
            e(b + 300, Stage::TxSegment, Phase::Enter, pkt),
            e(b + 400, Stage::TxSegment, Phase::Exit, pkt),
            e(b + 1_100, Stage::TxFramer, Phase::Instant, pkt),
            e(b + 1_800, Stage::TxFramer, Phase::Instant, pkt),
            e(b + 6_800, Stage::RxCellArrive, Phase::Instant, pkt),
            e(b + 6_850, Stage::RxCell, Phase::Enter, pkt),
            e(b + 6_900, Stage::RxCell, Phase::Exit, pkt),
            e(b + 6_950, Stage::RxValidate, Phase::Enter, pkt),
            e(b + 7_000, Stage::RxValidate, Phase::Exit, pkt),
            e(b + 7_500, Stage::RxDmaBurst, Phase::Instant, pkt),
            e(b + 7_550, Stage::RxComplete, Phase::Enter, pkt),
            e(b + 7_600, Stage::RxComplete, Phase::Exit, pkt),
        ]
    }

    #[test]
    fn one_pass_index_matches_waterfall_edges() {
        let spans = PacketSpans::from_events(&full_life(0, 0));
        let w = spans.waterfall(0).expect("complete life");
        assert_eq!(w.total, Duration::from_ns(7_600));
        assert_eq!(w.stage_sum(), w.total);
        assert_eq!(w.stage("tx setup"), Some(Duration::from_ns(100)));
        assert_eq!(w.stage("serialize"), Some(Duration::from_ns(1_400)));
        assert_eq!(w.stage("propagate"), Some(Duration::from_ns(5_000)));
    }

    #[test]
    fn breakdown_splits_wait_from_service_and_telescopes() {
        let spans = PacketSpans::from_events(&full_life(0, 0));
        let life = spans.life(0).unwrap();
        assert!(life.is_complete());
        let b = life.breakdown();
        assert_eq!(b.len(), 9);
        // tx setup: 0→100 total; engine picked it up at 20.
        assert_eq!(b[0].wait, Duration::from_ns(20));
        assert_eq!(b[0].service, Duration::from_ns(80));
        // rx cell: last arrival 6800 → exit 6900; enter at 6850.
        let rx = b.iter().find(|s| s.label == "rx cell").unwrap();
        assert_eq!(rx.wait, Duration::from_ns(50));
        assert_eq!(rx.service, Duration::from_ns(50));
        // Instant-only stages are pure service.
        let prop = b.iter().find(|s| s.label == "propagate").unwrap();
        assert_eq!(prop.wait, Duration::ZERO);
        // Telescoping: stage totals sum exactly to the life total.
        let sum = b.iter().fold(Duration::ZERO, |a, s| a + s.total());
        assert_eq!(sum, life.total().unwrap());
    }

    #[test]
    fn dropped_packet_has_no_waterfall_but_partial_spans() {
        // Life ends on the wire: no rx events at all.
        let mut ev = full_life(0, 0);
        ev.retain(|e| {
            !matches!(
                e.stage,
                Stage::RxCellArrive
                    | Stage::RxCell
                    | Stage::RxValidate
                    | Stage::RxDmaBurst
                    | Stage::RxComplete
            )
        });
        let spans = PacketSpans::from_events(&ev);
        assert!(spans.waterfall(0).is_none(), "incomplete life");
        let life = spans.life(0).expect("partial life still indexed");
        assert!(!life.is_complete());
        assert!(life.total().is_none());
        let b = life.breakdown();
        // The tx-side prefix is still attributable, stage by stage.
        let labels: Vec<&str> = b.iter().map(|s| s.label).collect();
        assert_eq!(
            labels,
            ["tx setup", "tx 1st burst", "tx 1st cell", "serialize"]
        );
        assert_eq!(b[0].wait, Duration::from_ns(20));
    }

    #[test]
    fn zero_length_packet_falls_back_to_setup_edge() {
        // No TxDmaBurst: "tx 1st burst" must collapse onto the setup
        // edge (zero duration), exactly like the old waterfall scan.
        let ev: Vec<TraceEvent> = full_life(0, 0)
            .into_iter()
            .filter(|e| e.stage != Stage::TxDmaBurst)
            .collect();
        let spans = PacketSpans::from_events(&ev);
        let w = spans.waterfall(0).expect("still complete");
        assert_eq!(w.stage("tx 1st burst"), Some(Duration::ZERO));
        assert_eq!(w.stage_sum(), w.total);
        let b = spans.life(0).unwrap().breakdown();
        assert_eq!(b[1].total(), Duration::ZERO);
    }

    #[test]
    fn index_holds_many_packets_and_skips_identityless_events() {
        let mut ev = Vec::new();
        ev.push(TraceEvent::instant(Time::ZERO, Stage::TxSetup)); // NO_ID
        ev.extend(full_life(0, 0));
        ev.extend(full_life(3, 50_000));
        let spans = PacketSpans::from_events(&ev);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans.packets().collect::<Vec<_>>(), vec![0, 3]);
        assert!(spans.life(1).is_none());
        assert!(spans.waterfall(3).is_some());
        assert!(spans.waterfall(7).is_none());
        assert!(!spans.is_empty());
        assert!(PacketSpans::from_events(&[]).is_empty());
    }
}
