//! Always-on tail exemplar reservoir.
//!
//! Histograms answer "how slow is p99"; they cannot answer "*which*
//! packets were the p99, so I can go look at them". This reservoir
//! retains packet identities at a fixed, small cost so every report can
//! name its tail:
//!
//! * the **slowest-N** packets seen (exact top-N by latency), and
//! * a **deterministic 1-in-M sample** of packet identities (top-K by
//!   latency among the sampled), from which the p99+ cohort is carved
//!   at read time against a histogram-derived threshold.
//!
//! Both sets are selected by a *total order* on `(latency, vc, pkt)`
//! and the sample membership is a pure seeded hash of the packet
//! identity (same splitmix64 mix as [`SamplingTracer`]) — so the
//! retained sets are byte-identical across reruns and across
//! `HNI_JOBS` worker counts, exactly like the sampled trace.
//!
//! Capacities are fixed at construction and both vectors are
//! preallocated: after the reservoir warms up, recording is
//! **zero-alloc** (gated by the counting-allocator test) and O(N+K)
//! scans of two tiny arrays — cheap enough to leave on in every run,
//! next to `latency_hist`.
//!
//! [`SamplingTracer`]: crate::sampler::SamplingTracer

use crate::sampler::mix64;
use hni_sim::{Duration, Time};

/// One retained packet identity with its measured latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Exemplar {
    /// VC key of the packet (the same key `VcMetrics` uses).
    pub vc: u32,
    /// Packet sequence id — joins back to `PacketSpans` / waterfalls.
    pub pkt: u32,
    /// Measured latency, in picoseconds.
    pub latency_ps: u64,
    /// Completion timestamp, in picoseconds since run start.
    pub done_ps: u64,
}

impl Exemplar {
    /// Total-order rank: latency first, identity as tiebreak. Makes
    /// top-N selection independent of insertion order.
    #[inline]
    fn rank(&self) -> (u64, u32, u32) {
        (self.latency_ps, self.vc, self.pkt)
    }

    /// Measured latency as a [`Duration`].
    pub fn latency(&self) -> Duration {
        Duration::from_ps(self.latency_ps)
    }
}

/// Fixed-capacity, deterministic tail exemplar reservoir.
#[derive(Clone, Debug)]
pub struct TailReservoir {
    slowest: Vec<Exemplar>,
    sampled: Vec<Exemplar>,
    n: usize,
    k: usize,
    one_in: u64,
    seed: u64,
    recorded: u64,
}

impl TailReservoir {
    /// Default always-on configuration: 8 slowest exemplars, a 16-deep
    /// 1-in-8 identity sample, fixed seed (reports are reproducible).
    pub fn paper() -> TailReservoir {
        TailReservoir::with(8, 16, 8, 0x5eed_1991)
    }

    /// Build a reservoir keeping the slowest `n` packets exactly and
    /// the slowest `k` of a deterministic 1-in-`one_in` identity
    /// sample under `seed`. Both capacities are allocated up front.
    pub fn with(n: usize, k: usize, one_in: u64, seed: u64) -> TailReservoir {
        TailReservoir {
            slowest: Vec::with_capacity(n),
            sampled: Vec::with_capacity(k),
            n,
            k,
            one_in: one_in.max(1),
            seed,
            recorded: 0,
        }
    }

    /// Pure keep/drop decision for a packet identity under this
    /// reservoir's seed and rate — order- and worker-independent,
    /// mirroring `SamplingTracer::keeps`.
    #[inline]
    pub fn keeps(&self, vc: u32, pkt: u32) -> bool {
        if self.one_in == 1 {
            return true;
        }
        let id = ((vc as u64) << 32) | pkt as u64;
        mix64(self.seed ^ mix64(id)).is_multiple_of(self.one_in)
    }

    /// Offer one completed packet. Zero-alloc once both sets are warm.
    #[inline]
    pub fn record(&mut self, vc: u32, pkt: u32, latency: Duration, done: Time) {
        self.recorded += 1;
        let ex = Exemplar {
            vc,
            pkt,
            latency_ps: latency.as_ps(),
            done_ps: done.as_ps(),
        };
        keep_top(&mut self.slowest, self.n, ex);
        if self.keeps(vc, pkt) {
            keep_top(&mut self.sampled, self.k, ex);
        }
    }

    /// The slowest packets seen, slowest first. Allocates (read path).
    pub fn slowest(&self) -> Vec<Exemplar> {
        sorted_desc(&self.slowest)
    }

    /// The retained identity sample, slowest first. Allocates.
    pub fn sampled(&self) -> Vec<Exemplar> {
        sorted_desc(&self.sampled)
    }

    /// The sampled exemplars at or above `threshold_ps` (pass a p99
    /// bound from `HdrHist::quantile`), slowest first. Allocates.
    pub fn cohort(&self, threshold_ps: u64) -> Vec<Exemplar> {
        let mut v: Vec<Exemplar> = self
            .sampled
            .iter()
            .copied()
            .filter(|e| e.latency_ps >= threshold_ps)
            .collect();
        v.sort_unstable_by_key(|e| std::cmp::Reverse(e.rank()));
        v
    }

    /// Packets offered so far.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// The sampling rate denominator for the identity sample.
    pub fn one_in(&self) -> u64 {
        self.one_in
    }

    /// Fold another reservoir (same configuration) into this one, as
    /// if its packets had been offered here.
    pub fn merge(&mut self, other: &TailReservoir) {
        for ex in &other.slowest {
            keep_top(&mut self.slowest, self.n, *ex);
        }
        for ex in &other.sampled {
            keep_top(&mut self.sampled, self.k, *ex);
        }
        self.recorded += other.recorded;
    }
}

impl Default for TailReservoir {
    fn default() -> Self {
        TailReservoir::paper()
    }
}

/// Keep the `cap` highest-ranked exemplars in `v` without reordering
/// it (and without allocating: `v` was reserved to `cap` up front).
#[inline]
fn keep_top(v: &mut Vec<Exemplar>, cap: usize, ex: Exemplar) {
    if v.len() < cap {
        v.push(ex);
        return;
    }
    let Some((idx, min)) = v
        .iter()
        .enumerate()
        .min_by_key(|(_, e)| e.rank())
        .map(|(i, e)| (i, *e))
    else {
        return; // cap == 0
    };
    if ex.rank() > min.rank() {
        v[idx] = ex;
    }
}

fn sorted_desc(v: &[Exemplar]) -> Vec<Exemplar> {
    let mut out = v.to_vec();
    out.sort_unstable_by_key(|e| std::cmp::Reverse(e.rank()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(r: &mut TailReservoir, lats_ns: &[(u32, u64)]) {
        for &(pkt, ns) in lats_ns {
            r.record(64, pkt, Duration::from_ns(ns), Time::from_ns(10 * ns));
        }
    }

    #[test]
    fn slowest_n_is_exact_and_sorted() {
        let mut r = TailReservoir::with(3, 8, 1, 7);
        fill(&mut r, &[(0, 50), (1, 900), (2, 10), (3, 700), (4, 800)]);
        let s = r.slowest();
        let pkts: Vec<u32> = s.iter().map(|e| e.pkt).collect();
        assert_eq!(pkts, [1, 4, 3], "top-3 by latency, slowest first");
        assert_eq!(s[0].latency(), Duration::from_ns(900));
        assert_eq!(r.recorded(), 5);
    }

    #[test]
    fn retained_sets_are_insertion_order_independent() {
        let pkts: Vec<(u32, u64)> = (0..500u32)
            .map(|p| (p, 100 + (p as u64 * 37) % 400))
            .collect();
        let mut fwd = TailReservoir::paper();
        fill(&mut fwd, &pkts);
        let mut rev_order = pkts.clone();
        rev_order.reverse();
        let mut rev = TailReservoir::paper();
        fill(&mut rev, &rev_order);
        assert_eq!(fwd.slowest(), rev.slowest());
        assert_eq!(fwd.sampled(), rev.sampled());
    }

    #[test]
    fn sample_membership_is_a_pure_identity_hash() {
        let r = TailReservoir::paper();
        let kept: Vec<u32> = (0..2000).filter(|&p| r.keeps(64, p)).collect();
        let again: Vec<u32> = (0..2000).filter(|&p| r.keeps(64, p)).collect();
        assert_eq!(kept, again);
        // ~1-in-8 of 2000: mean 250, sd ~15. Allow ±6 sd.
        assert!(
            (160..=340).contains(&kept.len()),
            "kept {} of 2000 at 1-in-8",
            kept.len()
        );
        // one_in=1 keeps every identity.
        let all = TailReservoir::with(4, 4, 1, 0);
        assert!((0..100).all(|p| all.keeps(1, p)));
    }

    #[test]
    fn cohort_filters_sampled_by_threshold() {
        let mut r = TailReservoir::with(4, 32, 1, 0);
        fill(&mut r, &[(0, 100), (1, 400), (2, 900), (3, 200)]);
        let cohort = r.cohort(Duration::from_ns(400).as_ps());
        let pkts: Vec<u32> = cohort.iter().map(|e| e.pkt).collect();
        assert_eq!(pkts, [2, 1]);
        assert!(r.cohort(u64::MAX).is_empty());
    }

    #[test]
    fn merge_equals_single_stream() {
        let pkts: Vec<(u32, u64)> = (0..200u32)
            .map(|p| (p, 50 + (p as u64 * 13) % 300))
            .collect();
        let mut whole = TailReservoir::paper();
        fill(&mut whole, &pkts);
        let mut left = TailReservoir::paper();
        let mut right = TailReservoir::paper();
        fill(&mut left, &pkts[..100]);
        fill(&mut right, &pkts[100..]);
        left.merge(&right);
        assert_eq!(left.slowest(), whole.slowest());
        assert_eq!(left.sampled(), whole.sampled());
        assert_eq!(left.recorded(), whole.recorded());
    }

    #[test]
    fn ties_break_deterministically() {
        let mut a = TailReservoir::with(2, 2, 1, 0);
        let mut b = TailReservoir::with(2, 2, 1, 0);
        fill(&mut a, &[(0, 100), (1, 100), (2, 100)]);
        fill(&mut b, &[(2, 100), (0, 100), (1, 100)]);
        // Equal latencies: identity tiebreak keeps the same pair.
        assert_eq!(a.slowest(), b.slowest());
        let pkts: Vec<u32> = a.slowest().iter().map(|e| e.pkt).collect();
        assert_eq!(pkts, [2, 1]);
    }
}
