//! Trace sinks: the `Tracer` trait and its in-memory implementations.

use crate::event::TraceEvent;

/// Where instrumented simulations emit [`TraceEvent`]s.
///
/// Instrumentation points must gate on [`Tracer::enabled`] before
/// constructing an event:
///
/// ```
/// # use hni_telemetry::{Tracer, NullTracer, TraceEvent, Stage, Time};
/// # let mut tracer = NullTracer;
/// # let now = Time::ZERO;
/// if tracer.enabled() {
///     tracer.record(TraceEvent::instant(now, Stage::TxFramer).cell(0));
/// }
/// ```
///
/// With the [`NullTracer`] that branch is constant-false, so the
/// steady-state per-cell path does no work and no allocation — results
/// are bit-identical to an uninstrumented run.
pub trait Tracer {
    /// Whether events should be constructed and recorded at all.
    fn enabled(&self) -> bool {
        true
    }

    /// Record one event. Events arrive in simulation order.
    fn record(&mut self, ev: TraceEvent);
}

/// The zero-overhead sink: tracing off.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&mut self, _ev: TraceEvent) {}
}

/// Unbounded recording sink: captures the full event stream for export
/// and reduction.
#[derive(Clone, Debug, Default)]
pub struct VecTracer {
    events: Vec<TraceEvent>,
}

impl VecTracer {
    /// New empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded stream, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consume the sink, returning the stream.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl Tracer for VecTracer {
    fn record(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }
}

/// Bounded flight recorder: a preallocated ring that keeps the most
/// recent `capacity` events. Recording into a warmed ring never
/// allocates, so it can stay on in long steady-state runs.
#[derive(Clone, Debug)]
pub struct RingTracer {
    buf: Vec<TraceEvent>,
    capacity: usize,
    next: usize,
    recorded: u64,
}

impl RingTracer {
    /// Ring holding the last `capacity` events (`capacity > 0`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be non-zero");
        RingTracer {
            buf: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            recorded: 0,
        }
    }

    /// Total events ever recorded (≥ what the ring still holds).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events dropped out the back of the ring.
    pub fn overwritten(&self) -> u64 {
        self.recorded - self.buf.len() as u64
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        if self.buf.len() < self.capacity {
            self.buf.clone()
        } else {
            let mut out = Vec::with_capacity(self.capacity);
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
            out
        }
    }
}

impl Tracer for RingTracer {
    fn record(&mut self, ev: TraceEvent) {
        self.recorded += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
            self.next = (self.next + 1) % self.capacity;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Stage;
    use hni_sim::Time;

    fn ev(i: u64) -> TraceEvent {
        TraceEvent::instant(Time::from_ns(i), Stage::TxFramer).cell(i)
    }

    #[test]
    fn null_tracer_is_disabled() {
        let t = NullTracer;
        assert!(!t.enabled());
    }

    #[test]
    fn vec_tracer_records_in_order() {
        let mut t = VecTracer::new();
        for i in 0..5 {
            t.record(ev(i));
        }
        assert_eq!(t.len(), 5);
        assert_eq!(t.events()[3].cell, 3);
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut t = RingTracer::new(4);
        for i in 0..10 {
            t.record(ev(i));
        }
        assert_eq!(t.recorded(), 10);
        assert_eq!(t.overwritten(), 6);
        let kept: Vec<u32> = t.events().iter().map(|e| e.cell).collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
    }

    #[test]
    fn ring_invariants_hold_across_many_wraps() {
        // Overfill a small ring several times over with a count that is
        // not a multiple of the capacity, checking the snapshot after
        // every record: bounded size, oldest→newest ordering with no
        // gaps, and recorded/overwritten bookkeeping that always sums.
        let cap = 5usize;
        let mut t = RingTracer::new(cap);
        for i in 0u64..23 {
            t.record(ev(i));
            let kept: Vec<u64> = t.events().iter().map(|e| e.cell as u64).collect();
            assert!(kept.len() <= cap, "ring grew past capacity at i={i}");
            let first = (i + 1).saturating_sub(cap as u64);
            let expected: Vec<u64> = (first..=i).collect();
            assert_eq!(kept, expected, "snapshot out of order at i={i}");
            assert_eq!(t.recorded(), i + 1);
            assert_eq!(t.overwritten(), first);
            assert_eq!(
                t.overwritten() + kept.len() as u64,
                t.recorded(),
                "kept + dropped must equal recorded at i={i}"
            );
        }
        // 23 records through a 5-slot ring: 4 full wraps plus 3.
        assert_eq!(t.recorded(), 23);
        assert_eq!(t.overwritten(), 18);
    }

    #[test]
    fn ring_under_capacity_is_plain() {
        let mut t = RingTracer::new(8);
        for i in 0..3 {
            t.record(ev(i));
        }
        let kept: Vec<u32> = t.events().iter().map(|e| e.cell).collect();
        assert_eq!(kept, vec![0, 1, 2]);
        assert_eq!(t.overwritten(), 0);
    }
}
