//! Windowed utilization time-series: busy time per fixed window.
//!
//! The profiler charges `(start, duration)` intervals; this accumulator
//! splits each interval across fixed-width windows so a resource's
//! utilization can be inspected *over time* — a run that is 60% busy on
//! average may still contain saturated windows, and it is the saturated
//! window (the high watermark) that names the bottleneck under burst.

use hni_sim::{Duration, Time};

/// Busy time accumulated per fixed-width window of simulated time.
///
/// Window `i` covers `[i·window, (i+1)·window)`. Charges may arrive in
/// any order and may span window boundaries; each is split exactly.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    window: Duration,
    buckets: Vec<Duration>,
}

impl TimeSeries {
    /// An empty series with the given window width (must be non-zero).
    pub fn new(window: Duration) -> Self {
        assert!(window > Duration::ZERO, "window must be non-zero");
        TimeSeries {
            window,
            buckets: Vec::new(),
        }
    }

    /// The window width.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// Charge `dur` of busy time starting at `from`, splitting across
    /// window boundaries.
    pub fn charge(&mut self, from: Time, dur: Duration) {
        if dur == Duration::ZERO {
            return;
        }
        let w = self.window.as_ps();
        let mut at = from.as_ps();
        let mut remaining = dur.as_ps();
        while remaining > 0 {
            let idx = (at / w) as usize;
            if idx >= self.buckets.len() {
                self.buckets.resize(idx + 1, Duration::ZERO);
            }
            let window_end = (idx as u64 + 1) * w;
            let take = remaining.min(window_end - at);
            self.buckets[idx] += Duration::from_ps(take);
            at += take;
            remaining -= take;
        }
    }

    /// Number of windows touched so far (trailing idle windows included
    /// only up to the last charge).
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether nothing has been charged.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Busy time in window `i` (zero past the end).
    pub fn busy(&self, i: usize) -> Duration {
        self.buckets.get(i).copied().unwrap_or(Duration::ZERO)
    }

    /// Utilization of window `i` — busy time over the window width.
    pub fn utilization(&self, i: usize) -> f64 {
        self.busy(i).as_s_f64() / self.window.as_s_f64()
    }

    /// The busiest window: `(index, utilization)`. `None` if empty.
    /// Ties resolve to the earliest window (deterministic).
    pub fn high_watermark(&self) -> Option<(usize, f64)> {
        let (mut best, mut best_busy) = (None, Duration::ZERO);
        for (i, &b) in self.buckets.iter().enumerate() {
            if b > best_busy {
                best = Some(i);
                best_busy = b;
            }
        }
        best.map(|i| (i, self.utilization(i)))
    }

    /// Total busy time across all windows.
    pub fn total(&self) -> Duration {
        self.buckets.iter().copied().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> Duration {
        Duration::from_us(n)
    }

    #[test]
    fn charge_within_one_window() {
        let mut ts = TimeSeries::new(us(10));
        ts.charge(Time::from_us(2), us(3));
        assert_eq!(ts.len(), 1);
        assert_eq!(ts.busy(0), us(3));
        assert!((ts.utilization(0) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn charge_splits_across_boundaries() {
        let mut ts = TimeSeries::new(us(10));
        // 25 µs starting at 8 µs: 2 into window 0, 10 into 1, 10 into 2,
        // 3 into 3.
        ts.charge(Time::from_us(8), us(25));
        assert_eq!(ts.busy(0), us(2));
        assert_eq!(ts.busy(1), us(10));
        assert_eq!(ts.busy(2), us(10));
        assert_eq!(ts.busy(3), us(3));
        assert_eq!(ts.total(), us(25));
    }

    #[test]
    fn high_watermark_finds_the_saturated_window() {
        let mut ts = TimeSeries::new(us(10));
        ts.charge(Time::ZERO, us(4));
        ts.charge(Time::from_us(10), us(10)); // window 1 fully busy
        ts.charge(Time::from_us(25), us(2));
        let (i, u) = ts.high_watermark().unwrap();
        assert_eq!(i, 1);
        assert!((u - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_series() {
        let ts = TimeSeries::new(us(10));
        assert!(ts.is_empty());
        assert_eq!(ts.high_watermark(), None);
        assert_eq!(ts.busy(7), Duration::ZERO);
        assert_eq!(ts.total(), Duration::ZERO);
    }

    #[test]
    fn zero_duration_charge_is_ignored() {
        let mut ts = TimeSeries::new(us(10));
        ts.charge(Time::from_us(99), Duration::ZERO);
        assert!(ts.is_empty());
    }

    #[test]
    fn out_of_order_charges_accumulate() {
        let mut ts = TimeSeries::new(us(10));
        ts.charge(Time::from_us(30), us(5));
        ts.charge(Time::ZERO, us(5));
        assert_eq!(ts.busy(0), us(5));
        assert_eq!(ts.busy(3), us(5));
        assert_eq!(ts.total(), us(10));
    }
}
