//! The workspace's one JSON string escaper.
//!
//! The workspace has no JSON dependency by policy (offline builds,
//! vendored shims), so every JSON emitter — trace JSONL, the
//! `BENCH_PERF.json` writer, the perf-sentinel history — hand-rolls its
//! document structure. String escaping is the one part that must not be
//! hand-rolled per call site: a stray quote or control character in a
//! name would corrupt the whole document. This module is the single
//! shared implementation (RFC 8259 §7):
//!
//! * `"` and `\` are backslash-escaped;
//! * control characters U+0000..U+001F use the short forms
//!   (`\n`, `\t`, `\r`, `\b`, `\f`) where they exist, `\u00XX`
//!   otherwise;
//! * everything else — including non-ASCII — passes through verbatim,
//!   as JSON is UTF-8 native.

/// Append `s` to `out` with JSON string escaping (no surrounding
/// quotes). Allocation-free when nothing needs escaping beyond `out`'s
/// own growth.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u00");
                let b = c as u32;
                let hex = |n: u32| char::from_digit(n, 16).unwrap();
                out.push(hex(b >> 4));
                out.push(hex(b & 0xF));
            }
            c => out.push(c),
        }
    }
}

/// `s` as a complete JSON string token, quotes included.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_strings_pass_through() {
        assert_eq!(quote("tx.framer"), "\"tx.framer\"");
        assert_eq!(quote(""), "\"\"");
    }

    #[test]
    fn quotes_and_backslashes_escape() {
        assert_eq!(quote("a\"b"), "\"a\\\"b\"");
        assert_eq!(quote("C:\\path"), "\"C:\\\\path\"");
    }

    #[test]
    fn control_chars_use_short_forms_then_u00xx() {
        assert_eq!(quote("a\nb\tc\rd"), "\"a\\nb\\tc\\rd\"");
        assert_eq!(quote("\u{0008}\u{000C}"), "\"\\b\\f\"");
        assert_eq!(quote("\u{0000}"), "\"\\u0000\"");
        assert_eq!(quote("\u{001F}"), "\"\\u001f\"");
        assert_eq!(quote("\u{001B}[0m"), "\"\\u001b[0m\"");
    }

    #[test]
    fn non_ascii_passes_verbatim() {
        assert_eq!(quote("métriques λ µs"), "\"métriques λ µs\"");
        assert_eq!(quote("セル"), "\"セル\"");
        // U+0080 is a control char by Unicode but NOT by JSON: only
        // U+0000..U+001F require escaping.
        assert_eq!(quote("\u{0080}"), "\"\u{0080}\"");
    }

    #[test]
    fn round_trips_are_parseable_shape() {
        // Escaped output must contain no raw control bytes or naked quotes.
        let s = quote("x\"\\\n\u{0001}é");
        let inner = &s[1..s.len() - 1];
        assert!(!inner.chars().any(|c| (c as u32) < 0x20));
        let bytes = inner.as_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            if b == b'"' {
                assert!(i > 0 && bytes[i - 1] == b'\\', "naked quote in {s}");
            }
        }
    }
}
