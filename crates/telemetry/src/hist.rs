//! `HdrHist` — the always-on latency histogram of the telemetry plane.
//!
//! A thin percentile-oriented layer over the simulation kernel's
//! fixed-size log₂ [`Histogram`]:
//!
//! * **Fixed 64 buckets, zero-alloc.** Recording is a shift, an index
//!   and three adds; the struct is `Clone` and lives inline in run
//!   reports, so it can stay on at line rate.
//! * **Mergeable.** Bucket-wise addition is exact: merging per-shard
//!   histograms of a parallel run equals the histogram of the
//!   concatenated samples — the property that lets `par_sweep` workers
//!   each keep their own and still report one distribution.
//! * **Bounded quantization error.** A log₂ bucket's upper bound is
//!   < 2× the smallest value it holds, so any reported percentile is an
//!   upper bound within a factor of two of the true order statistic —
//!   the right trade for order-of-magnitude tail questions at O(1)
//!   memory. The `max` is tracked exactly, outside the buckets.
//!
//! The standard report is [`Pcts`]: p50/p90/p99/p999 upper bounds plus
//! the exact max — the tail profile the paper's host-interface argument
//! turns on, where a mean would hide every queueing excursion.

use core::fmt;
use hni_sim::stats::Histogram;
use hni_sim::Duration;

/// The percentile band a histogram reports: bucket upper bounds for the
/// quantiles, the exact maximum, and the exact count/mean.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pcts {
    /// Number of samples.
    pub count: u64,
    /// Exact arithmetic mean.
    pub mean: f64,
    /// Median upper bound.
    pub p50: u64,
    /// 90th-percentile upper bound.
    pub p90: u64,
    /// 99th-percentile upper bound.
    pub p99: u64,
    /// 99.9th-percentile upper bound.
    pub p999: u64,
    /// Exact largest sample.
    pub max: u64,
}

/// Fixed-size, mergeable, zero-alloc log₂ latency histogram.
#[derive(Clone, Default)]
pub struct HdrHist {
    inner: Histogram,
}

impl HdrHist {
    /// New empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a raw `u64` sample (picoseconds by convention).
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.inner.record(v);
    }

    /// Record a duration (in picoseconds).
    #[inline]
    pub fn record_duration(&mut self, d: Duration) {
        self.inner.record(d.as_ps());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.inner.count()
    }

    /// Exact arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.inner.mean()
    }

    /// Exact largest sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.inner.max()
    }

    /// Upper bound of the bucket holding the `q`-quantile sample.
    pub fn quantile(&self, q: f64) -> u64 {
        self.inner.quantile(q)
    }

    /// Fold another histogram into this one (exact, see module docs).
    pub fn merge(&mut self, other: &HdrHist) {
        self.inner.merge(&other.inner);
    }

    /// The standard percentile band.
    pub fn pcts(&self) -> Pcts {
        Pcts {
            count: self.inner.count(),
            mean: self.inner.mean(),
            p50: self.inner.quantile(0.50),
            p90: self.inner.quantile(0.90),
            p99: self.inner.quantile(0.99),
            p999: self.inner.quantile(0.999),
            max: self.inner.max(),
        }
    }

    /// The underlying kernel histogram (bucket access for exporters).
    pub fn as_histogram(&self) -> &Histogram {
        &self.inner
    }

    /// One fixed-width report line in microseconds, the unit the R-F*
    /// latency tables use: `n=… mean=… p50≤… p90≤… p99≤… p999≤… max=…`.
    pub fn render_us(&self) -> String {
        let us = |ps: u64| ps as f64 / 1e6;
        let p = self.pcts();
        format!(
            "n={} mean={:.2} p50<={:.2} p90<={:.2} p99<={:.2} p999<={:.2} max={:.2}",
            p.count,
            p.mean / 1e6,
            us(p.p50),
            us(p.p90),
            us(p.p99),
            us(p.p999),
            us(p.max)
        )
    }
}

impl fmt::Debug for HdrHist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = self.pcts();
        write!(
            f,
            "HdrHist {{ n: {}, mean: {:.1}, p50≤{}, p90≤{}, p99≤{}, p999≤{}, max: {} }}",
            p.count, p.mean, p.p50, p.p90, p.p99, p.p999, p.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_band_orders_and_bounds() {
        let mut h = HdrHist::new();
        for _ in 0..900 {
            h.record(1_000); // ~µs-scale base latency
        }
        for _ in 0..90 {
            h.record(10_000);
        }
        for _ in 0..9 {
            h.record(100_000);
        }
        h.record(1_000_000);
        let p = h.pcts();
        assert_eq!(p.count, 1000);
        assert!(p.p50 >= 1_000 && p.p50 < 2_000);
        assert!(p.p90 >= 1_000, "p90={}", p.p90);
        assert!(p.p99 >= 10_000 && p.p99 < 20_000, "p99={}", p.p99);
        assert!(p.p999 >= 100_000 && p.p999 < 200_000, "p999={}", p.p999);
        assert_eq!(p.max, 1_000_000, "max is exact, not a bucket bound");
        assert!(p.p50 <= p.p90 && p.p90 <= p.p99 && p.p99 <= p.p999);
        assert!(p.p999 as f64 <= p.max as f64 * 2.0);
    }

    #[test]
    fn merge_equals_concatenation() {
        let mut a = HdrHist::new();
        let mut b = HdrHist::new();
        let mut whole = HdrHist::new();
        for v in 0..500u64 {
            a.record(v * 3);
            whole.record(v * 3);
        }
        for v in 0..500u64 {
            b.record(v * v);
            whole.record(v * v);
        }
        a.merge(&b);
        assert_eq!(a.pcts(), whole.pcts());
    }

    #[test]
    fn render_us_mentions_every_band() {
        let mut h = HdrHist::new();
        h.record_duration(Duration::from_us(3));
        let line = h.render_us();
        for needle in ["n=1", "p50<=", "p90<=", "p99<=", "p999<=", "max="] {
            assert!(line.contains(needle), "missing {needle} in {line}");
        }
    }

    #[test]
    fn empty_hist_is_quiet_zeroes() {
        let h = HdrHist::new();
        let p = h.pcts();
        assert_eq!(
            (p.count, p.p50, p.p90, p.p99, p.p999, p.max),
            (0, 0, 0, 0, 0, 0)
        );
        assert_eq!(p.mean, 0.0);
    }
}
