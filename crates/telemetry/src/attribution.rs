//! Bottleneck attribution: rank resources by utilization and compute
//! the throughput ceiling each one implies.
//!
//! Given a [`Profile`] and the run's achieved goodput, every charged
//! resource gets a verdict: its utilization over the run and the
//! goodput the run would reach if that resource were driven to 100% —
//! `ceiling = goodput / utilization`. The resource with the highest
//! utilization is the bottleneck: it hits saturation first as load
//! grows, and its ceiling is the run's throughput limit. This is the
//! paper's "receive engine saturates first, bus second" argument turned
//! into a machine-checked output.
//!
//! Because every charge in the simulations is exact (each cell, burst
//! and slot contributes its deterministic duration) and all components
//! share the same span denominator, the measured ranking equals the
//! analytic per-packet-time ranking — there is no sampling noise.

use crate::profiler::{Component, Profile};
use hni_sim::Duration;

/// One resource's share of the run.
#[derive(Clone, Debug)]
pub struct ResourceShare {
    /// The resource.
    pub component: Component,
    /// Total active time charged to it.
    pub busy: Duration,
    /// Active time over the run span.
    pub utilization: f64,
    /// Goodput the run would achieve with this resource saturated:
    /// `goodput / utilization`. Infinite if the utilization is zero.
    pub ceiling_bps: f64,
}

/// The ranked attribution of one run.
#[derive(Clone, Debug)]
pub struct Attribution {
    /// The run's achieved goodput (the ceiling numerator).
    pub goodput_bps: f64,
    /// The run span the utilizations are over.
    pub span: Duration,
    /// Charged resources, most-utilized first. Ties break in canonical
    /// [`Component::ALL`] order, so the ranking is deterministic.
    pub ranked: Vec<ResourceShare>,
}

/// Compute the attribution of a profile snapshot.
///
/// Only components with nonzero active time participate — occupancy
/// gauges (FIFOs, pools) measure loss pressure, not a serial resource,
/// and are reported through the profile itself.
pub fn attribute(profile: &Profile, goodput_bps: f64) -> Attribution {
    let span = profile.span();
    let mut ranked: Vec<ResourceShare> = Component::ALL
        .into_iter()
        .filter(|&c| profile.active_time(c) > Duration::ZERO)
        .map(|c| {
            let utilization = profile.utilization(c);
            ResourceShare {
                component: c,
                busy: profile.active_time(c),
                utilization,
                ceiling_bps: if utilization > 0.0 {
                    goodput_bps / utilization
                } else {
                    f64::INFINITY
                },
            }
        })
        .collect();
    // Stable sort: equal utilizations keep canonical component order.
    ranked.sort_by(|a, b| b.utilization.partial_cmp(&a.utilization).unwrap());
    Attribution {
        goodput_bps,
        span,
        ranked,
    }
}

impl Attribution {
    /// The most-utilized resource — the one that saturates first.
    pub fn bottleneck(&self) -> Option<Component> {
        self.ranked.first().map(|r| r.component)
    }

    /// This run's share for one resource, if it was charged at all.
    pub fn share(&self, component: Component) -> Option<&ResourceShare> {
        self.ranked.iter().find(|r| r.component == component)
    }

    /// Render the ranked table plus the bottleneck verdict.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:>12} {:>12} {:>16}\n",
            "resource", "busy", "utilization", "implied ceiling"
        ));
        for r in &self.ranked {
            out.push_str(&format!(
                "{:<12} {:>12} {:>11.1}% {:>13.1} Mb/s\n",
                r.component.name(),
                format!("{}", r.busy),
                r.utilization * 100.0,
                r.ceiling_bps / 1e6,
            ));
        }
        match self.ranked.first() {
            Some(top) => out.push_str(&format!(
                "bottleneck: {} (utilization {:.1}%, ceiling ~{:.1} Mb/s)\n",
                top.component.name(),
                top.utilization * 100.0,
                top.ceiling_bps / 1e6,
            )),
            None => out.push_str("bottleneck: none (nothing charged)\n"),
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{Activity, CycleProfiler, Profiler};
    use hni_sim::Time;

    fn profile_with(charges: &[(Component, u64)]) -> Profile {
        let mut p = CycleProfiler::new();
        for &(c, us) in charges {
            p.charge(c, Activity::Busy, Time::ZERO, Duration::from_us(us));
        }
        p.snapshot(Time::from_us(100))
    }

    #[test]
    fn ranks_by_utilization_and_computes_ceilings() {
        let prof = profile_with(&[
            (Component::TxEngine, 40),
            (Component::TxBus, 80),
            (Component::TxLink, 60),
        ]);
        let a = attribute(&prof, 100e6);
        assert_eq!(a.bottleneck(), Some(Component::TxBus));
        let order: Vec<Component> = a.ranked.iter().map(|r| r.component).collect();
        assert_eq!(
            order,
            vec![Component::TxBus, Component::TxLink, Component::TxEngine]
        );
        let bus = a.share(Component::TxBus).unwrap();
        assert!((bus.utilization - 0.8).abs() < 1e-12);
        // 100 Mb/s at 80% utilization: saturating the bus gives 125.
        assert!((bus.ceiling_bps - 125e6).abs() < 1.0);
        assert!(a.share(Component::RxEngine).is_none());
    }

    #[test]
    fn ties_break_in_canonical_order() {
        let prof = profile_with(&[(Component::TxLink, 50), (Component::TxEngine, 50)]);
        let a = attribute(&prof, 1e6);
        // Equal utilization: TxEngine precedes TxLink in Component::ALL.
        assert_eq!(a.bottleneck(), Some(Component::TxEngine));
    }

    #[test]
    fn empty_profile_has_no_bottleneck() {
        let prof = CycleProfiler::new().snapshot(Time::from_us(10));
        let a = attribute(&prof, 0.0);
        assert_eq!(a.bottleneck(), None);
        assert!(a.render().contains("bottleneck: none"));
    }

    #[test]
    fn render_names_the_bottleneck() {
        let prof = profile_with(&[(Component::RxEngine, 90), (Component::RxBus, 70)]);
        let a = attribute(&prof, 500e6);
        let text = a.render();
        assert!(text.contains("bottleneck: rx.engine"));
        assert!(text.contains("rx.bus"));
        assert!(text.contains("implied ceiling"));
    }
}
