//! A registry of named metrics with a deterministic text dump.
//!
//! Metric instances are the `hni-sim::stats` collectors; the registry
//! adds hierarchical naming (`nic.tx.seg.cells`) and one place to dump
//! from. Names sort deterministically (BTreeMap), so dumps are stable
//! across runs — a requirement for golden tests.

use crate::event::{Phase, Stage, TraceEvent};
use hni_sim::stats::{Counter, Histogram, OccupancyTracker, RateMeter, Summary};
use hni_sim::Time;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One named metric.
// Variant sizes differ (Histogram carries its bucket array inline), but
// a registry holds tens of metrics — boxing would cost an indirection
// on every sample for nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum Metric {
    /// Event/byte counter.
    Counter(Counter),
    /// Log₂-bucketed histogram (picoseconds by convention).
    Histogram(Histogram),
    /// Bytes/units over simulated time.
    Rate(RateMeter),
    /// Time-weighted occupancy.
    Occupancy(OccupancyTracker),
    /// Running min/mean/max summary.
    Summary(Summary),
}

/// Named metrics under hierarchical dotted names.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, Metric>,
}

macro_rules! accessor {
    ($fn_name:ident, $variant:ident, $ty:ty, $doc:literal) => {
        #[doc = $doc]
        ///
        /// Creates the metric on first use; panics if the name is
        /// already registered with a different type.
        pub fn $fn_name(&mut self, name: &str) -> &mut $ty {
            let m = self
                .metrics
                .entry(name.to_string())
                .or_insert_with(|| Metric::$variant(<$ty>::new()));
            match m {
                Metric::$variant(v) => v,
                other => panic!("metric '{name}' already registered as {other:?}"),
            }
        }
    };
}

impl MetricsRegistry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    accessor!(counter, Counter, Counter, "Counter under `name`.");
    accessor!(histogram, Histogram, Histogram, "Histogram under `name`.");
    accessor!(rate, Rate, RateMeter, "Rate meter under `name`.");
    accessor!(
        occupancy,
        Occupancy,
        OccupancyTracker,
        "Occupancy tracker under `name`."
    );
    accessor!(summary, Summary, Summary, "Summary under `name`.");

    /// Look up a metric by exact name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.get(name)
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Iterate metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Deterministic text dump: one line per metric, sorted by name.
    /// `end` closes rate/occupancy windows (usually the simulation end).
    pub fn dump(&self, end: Time) -> String {
        let mut out = String::new();
        for (name, m) in &self.metrics {
            match m {
                Metric::Counter(c) => {
                    let _ = writeln!(
                        out,
                        "{name} counter events={} bytes={}",
                        c.events(),
                        c.bytes()
                    );
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "{name} histogram n={} mean_ps={:.1} p50_ps<={} p99_ps<={}",
                        h.count(),
                        h.mean(),
                        h.quantile(0.5),
                        h.quantile(0.99)
                    );
                }
                Metric::Rate(r) => {
                    let _ = writeln!(
                        out,
                        "{name} rate units={} bytes={} bps={:.1} ups={:.1}",
                        r.units(),
                        r.bytes(),
                        r.bits_per_second(end),
                        r.units_per_second(end)
                    );
                }
                Metric::Occupancy(o) => {
                    let _ = writeln!(
                        out,
                        "{name} occupancy current={} peak={} mean={:.3}",
                        o.current(),
                        o.peak(),
                        o.mean(end)
                    );
                }
                Metric::Summary(s) => {
                    let _ = writeln!(out, "{name} summary {s}");
                }
            }
        }
        out
    }

    /// Derive the standard pipeline metrics from a trace stream — every
    /// experiment's registry is a *query over the telemetry stream*, not
    /// separately maintained accounting.
    ///
    /// Spans (Enter/Exit pairs of the same stage) feed per-stage service
    /// time histograms under `nic.<stage>.time_ps`; instants feed
    /// counters, rates and occupancy under fixed names.
    pub fn from_trace(events: &[TraceEvent], end: Time) -> Self {
        let mut reg = MetricsRegistry::new();
        // The engine is a serial resource, so at most one span per stage
        // is open at a time; a per-stage last-Enter map suffices.
        let mut open: BTreeMap<Stage, Time> = BTreeMap::new();
        for ev in events {
            match ev.phase {
                Phase::Enter => {
                    open.insert(ev.stage, ev.time);
                }
                Phase::Exit => {
                    if let Some(t0) = open.remove(&ev.stage) {
                        let name = format!("nic.{}.time_ps", ev.stage.name());
                        reg.histogram(&name)
                            .record_duration(ev.time.saturating_since(t0));
                    }
                }
                Phase::Instant => {}
            }
            match ev.stage {
                Stage::TxDescriptor => reg.counter("nic.tx.descriptors").bump(),
                Stage::TxSegment if ev.phase == Phase::Exit => {
                    reg.counter("nic.tx.seg.cells").bump()
                }
                Stage::TxDmaBurst => reg.counter("nic.tx.dma.bursts").add(ev.arg),
                Stage::TxFifoEnqueue => reg.occupancy("nic.tx.fifo.occupancy").set(ev.time, ev.arg),
                Stage::TxFramer => {
                    reg.occupancy("nic.tx.fifo.occupancy").set(ev.time, ev.arg);
                    // One ATM cell = 53 octets on the wire.
                    reg.rate("nic.tx.framer.cells").record(ev.time, 53);
                }
                Stage::RxCellArrive => reg.counter("nic.rx.cells").bump(),
                Stage::RxFifoEnqueue => reg.occupancy("nic.rx.fifo.occupancy").set(ev.time, ev.arg),
                Stage::RxFifoDrop => reg.counter("nic.rx.drops.fifo").bump(),
                Stage::RxPoolDrop => reg.counter("nic.rx.drops.pool").bump(),
                // Discard stages carry the cell count in `arg` so the
                // counters reconcile 1:1 with the run's cell ledger.
                Stage::RxEpdDiscard => reg.counter("nic.rx.discards.epd").add(ev.arg),
                Stage::RxPpdDiscard => reg.counter("nic.rx.discards.ppd").add(ev.arg),
                Stage::RxStaleDiscard => reg.counter("nic.rx.discards.stale").add(ev.arg),
                Stage::RxReasmExpire => {
                    reg.counter("nic.rx.reasm.expiries").bump();
                    reg.counter("nic.rx.discards.expired").add(ev.arg);
                }
                Stage::RxValidateFail if ev.phase == Phase::Instant => {
                    reg.counter("nic.rx.validate.failures").bump();
                }
                Stage::RxReasmAppend => reg.counter("nic.rx.reasm.appends").bump(),
                Stage::RxReasmComplete => reg.counter("nic.rx.reasm.completions").bump(),
                // Receive bursts carry the burst ordinal in `arg`, not a
                // byte count — count events only.
                Stage::RxDmaBurst => reg.counter("nic.rx.dma.bursts").bump(),
                Stage::RxComplete if ev.phase == Phase::Exit => {
                    reg.counter("nic.rx.completions").bump()
                }
                Stage::CompletionPush => reg.counter("host.cq.pushes").bump(),
                Stage::Isr => reg.counter("host.isrs").bump(),
                Stage::HostDeliver => reg.counter("host.delivered").bump(),
                Stage::SwitchEnqueue => {
                    reg.counter("switch.enqueued").bump();
                    reg.occupancy("switch.queue.occupancy").set(ev.time, ev.arg);
                }
                Stage::SwitchDequeue => {
                    reg.counter("switch.dequeued").bump();
                    reg.occupancy("switch.queue.occupancy").set(ev.time, ev.arg);
                }
                _ => {}
            }
        }
        // Close the accounting window so dumps are reproducible.
        let _ = end;
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_create_once() {
        let mut reg = MetricsRegistry::new();
        reg.counter("a.b").add(10);
        reg.counter("a.b").bump();
        assert_eq!(reg.len(), 1);
        match reg.get("a.b") {
            Some(Metric::Counter(c)) => {
                assert_eq!(c.events(), 2);
                assert_eq!(c.bytes(), 10);
            }
            other => panic!("wrong metric {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_conflict_panics() {
        let mut reg = MetricsRegistry::new();
        reg.counter("x").bump();
        reg.histogram("x");
    }

    #[test]
    fn dump_is_sorted_and_deterministic() {
        let mut reg = MetricsRegistry::new();
        reg.counter("z.last").bump();
        reg.counter("a.first").add(5);
        reg.histogram("m.mid").record(100);
        let d1 = reg.dump(Time::from_us(1));
        let d2 = reg.dump(Time::from_us(1));
        assert_eq!(d1, d2);
        let lines: Vec<&str> = d1.lines().collect();
        assert!(lines[0].starts_with("a.first"));
        assert!(lines[1].starts_with("m.mid"));
        assert!(lines[2].starts_with("z.last"));
    }

    #[test]
    fn from_trace_counts_spans_and_instants() {
        let events = vec![
            TraceEvent::instant(Time::ZERO, Stage::TxDescriptor).pkt(0),
            TraceEvent::enter(Time::ZERO, Stage::TxSegment).pkt(0),
            TraceEvent::exit(Time::from_ns(100), Stage::TxSegment).pkt(0),
            TraceEvent::instant(Time::from_ns(120), Stage::TxFifoEnqueue).arg(1),
            TraceEvent::instant(Time::from_ns(820), Stage::TxFramer)
                .arg(0)
                .cell(0),
            TraceEvent::instant(Time::from_ns(900), Stage::RxFifoDrop),
        ];
        let reg = MetricsRegistry::from_trace(&events, Time::from_us(1));
        match reg.get("nic.tx.seg.cells") {
            Some(Metric::Counter(c)) => assert_eq!(c.events(), 1),
            other => panic!("{other:?}"),
        }
        match reg.get("nic.tx.seg.time_ps") {
            Some(Metric::Histogram(h)) => {
                assert_eq!(h.count(), 1);
                assert!((h.mean() - 100_000.0).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
        match reg.get("nic.rx.drops.fifo") {
            Some(Metric::Counter(c)) => assert_eq!(c.events(), 1),
            other => panic!("{other:?}"),
        }
        assert!(reg.get("nic.tx.fifo.occupancy").is_some());
    }
}
