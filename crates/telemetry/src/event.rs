//! Structured trace records for cell- and packet-lifecycle events.

use hni_sim::Time;

/// Sentinel for "no id": packs `u32::MAX` so `TraceEvent` stays `Copy`
/// and fixed-size without `Option` padding.
pub const NO_ID: u32 = u32::MAX;

/// A pipeline stage boundary. Names are hierarchical, mirroring the
/// metric naming scheme (`tx.seg`, `rx.reasm.append`, `host.isr`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// Transmit descriptor fetched / packet arrival at the interface.
    TxDescriptor,
    /// Engine per-packet transmit setup.
    TxSetup,
    /// One transmit DMA burst (engine part + bus occupancy) finished.
    TxDmaBurst,
    /// Per-cell segmentation + payload CRC + HEC generation.
    TxSegment,
    /// Cell admitted into the output FIFO (arg = occupancy after).
    TxFifoEnqueue,
    /// Cell handed to the framer — on the wire (arg = occupancy after).
    TxFramer,
    /// Per-packet transmit close-out (trailer store, descriptor update).
    TxComplete,
    /// Cell arrival at the receive interface.
    RxCellArrive,
    /// Cell admitted into the input FIFO (arg = occupancy after).
    RxFifoEnqueue,
    /// Cell lost to input-FIFO overrun.
    RxFifoDrop,
    /// HEC verification of a received cell.
    RxHec,
    /// CAM / VCI lookup of a received cell.
    RxCamLookup,
    /// Bundled per-cell receive engine work (HEC·lookup·enqueue·CRC).
    RxCell,
    /// Cell appended to a reassembly chain (arg = chain length).
    RxReasmAppend,
    /// Cell lost to buffer-pool exhaustion.
    RxPoolDrop,
    /// Cell refused at frame start by Early Packet Discard (arg = cells
    /// charged to the discard, always 1 here).
    RxEpdDiscard,
    /// Cell (or, on the triggering cell, the whole stored chain) cut by
    /// Partial Packet Discard (arg = cells charged to the discard).
    RxPpdDiscard,
    /// Straggler cell for an already-resolved frame discarded
    /// (arg = cells charged, always 1).
    RxStaleDiscard,
    /// Stalled reassembly chain purged by the expiry timer
    /// (arg = stored cells discarded with it).
    RxReasmExpire,
    /// End-of-frame validation.
    RxValidate,
    /// End-of-frame validation failed — wrong cell count or corrupt
    /// payload (arg = cells the failed frame had accumulated).
    RxValidateFail,
    /// Reassembly chain completed for delivery.
    RxReasmComplete,
    /// One delivery DMA burst into host memory finished.
    RxDmaBurst,
    /// Completion processing for a delivered packet.
    RxComplete,
    /// Completion-queue push toward the host.
    CompletionPush,
    /// Host interrupt (ISR entry).
    Isr,
    /// Host driver handed the packet to the application.
    HostDeliver,
    /// Cell enqueued into a switch output port (arg = queue depth).
    SwitchEnqueue,
    /// Cell pulled from a switch output port (arg = queue depth).
    SwitchDequeue,
}

impl Stage {
    /// Hierarchical stable name, used in JSONL output and metric names.
    pub fn name(self) -> &'static str {
        match self {
            Stage::TxDescriptor => "tx.descriptor",
            Stage::TxSetup => "tx.setup",
            Stage::TxDmaBurst => "tx.dma",
            Stage::TxSegment => "tx.seg",
            Stage::TxFifoEnqueue => "tx.fifo.enq",
            Stage::TxFramer => "tx.framer",
            Stage::TxComplete => "tx.complete",
            Stage::RxCellArrive => "rx.arrive",
            Stage::RxFifoEnqueue => "rx.fifo.enq",
            Stage::RxFifoDrop => "rx.fifo.drop",
            Stage::RxHec => "rx.hec",
            Stage::RxCamLookup => "rx.cam",
            Stage::RxCell => "rx.cell",
            Stage::RxReasmAppend => "rx.reasm.append",
            Stage::RxPoolDrop => "rx.pool.drop",
            Stage::RxEpdDiscard => "rx.discard.epd",
            Stage::RxPpdDiscard => "rx.discard.ppd",
            Stage::RxStaleDiscard => "rx.discard.stale",
            Stage::RxReasmExpire => "rx.reasm.expire",
            Stage::RxValidate => "rx.validate",
            Stage::RxValidateFail => "rx.validate.fail",
            Stage::RxReasmComplete => "rx.reasm.complete",
            Stage::RxDmaBurst => "rx.dma",
            Stage::RxComplete => "rx.complete",
            Stage::CompletionPush => "host.cq.push",
            Stage::Isr => "host.isr",
            Stage::HostDeliver => "host.deliver",
            Stage::SwitchEnqueue => "switch.enq",
            Stage::SwitchDequeue => "switch.deq",
        }
    }
}

/// Whether an event opens a span, closes one, or stands alone.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Span start.
    Enter,
    /// Span end.
    Exit,
    /// Point event.
    Instant,
}

impl Phase {
    /// One-letter code used in JSONL output (`B`egin/`E`nd/`I`nstant).
    pub fn code(self) -> char {
        match self {
            Phase::Enter => 'B',
            Phase::Exit => 'E',
            Phase::Instant => 'I',
        }
    }
}

/// One trace record. `Copy` and fixed-size: recording an event never
/// allocates, so tracing is safe on the per-cell steady-state path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time of the event.
    pub time: Time,
    /// Pipeline stage.
    pub stage: Stage,
    /// Span phase.
    pub phase: Phase,
    /// Packed VC identity (`VcId::cam_key` form), or [`NO_ID`].
    pub vc: u32,
    /// Packet sequence id (workload index), or [`NO_ID`].
    pub pkt: u32,
    /// Cell sequence id, or [`NO_ID`].
    pub cell: u32,
    /// Stage-specific argument (bytes, occupancy, burst index…).
    pub arg: u64,
}

impl TraceEvent {
    fn new(time: Time, stage: Stage, phase: Phase) -> Self {
        TraceEvent {
            time,
            stage,
            phase,
            vc: NO_ID,
            pkt: NO_ID,
            cell: NO_ID,
            arg: 0,
        }
    }

    /// A point event.
    pub fn instant(time: Time, stage: Stage) -> Self {
        Self::new(time, stage, Phase::Instant)
    }

    /// A span start.
    pub fn enter(time: Time, stage: Stage) -> Self {
        Self::new(time, stage, Phase::Enter)
    }

    /// A span end.
    pub fn exit(time: Time, stage: Stage) -> Self {
        Self::new(time, stage, Phase::Exit)
    }

    /// Attach a packed VC identity.
    pub fn vc(mut self, vc: u32) -> Self {
        self.vc = vc;
        self
    }

    /// Attach a packet sequence id.
    pub fn pkt(mut self, pkt: usize) -> Self {
        self.pkt = pkt as u32;
        self
    }

    /// Attach a cell sequence id.
    pub fn cell(mut self, cell: u64) -> Self {
        self.cell = cell as u32;
        self
    }

    /// Attach a stage-specific argument.
    pub fn arg(mut self, arg: u64) -> Self {
        self.arg = arg;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let ev = TraceEvent::instant(Time::from_ns(5), Stage::TxFramer)
            .vc(7)
            .pkt(3)
            .cell(11)
            .arg(42);
        assert_eq!(ev.time, Time::from_ns(5));
        assert_eq!(ev.stage, Stage::TxFramer);
        assert_eq!(ev.phase, Phase::Instant);
        assert_eq!((ev.vc, ev.pkt, ev.cell, ev.arg), (7, 3, 11, 42));
    }

    #[test]
    fn event_is_small_and_copy() {
        // Fixed-size guard: the per-cell path records these by value.
        assert!(core::mem::size_of::<TraceEvent>() <= 40);
        let a = TraceEvent::enter(Time::ZERO, Stage::TxSetup);
        let b = a; // Copy
        assert_eq!(a, b);
    }

    #[test]
    fn stage_names_are_unique_and_hierarchical() {
        use std::collections::BTreeSet;
        let all = [
            Stage::TxDescriptor,
            Stage::TxSetup,
            Stage::TxDmaBurst,
            Stage::TxSegment,
            Stage::TxFifoEnqueue,
            Stage::TxFramer,
            Stage::TxComplete,
            Stage::RxCellArrive,
            Stage::RxFifoEnqueue,
            Stage::RxFifoDrop,
            Stage::RxHec,
            Stage::RxCamLookup,
            Stage::RxCell,
            Stage::RxReasmAppend,
            Stage::RxPoolDrop,
            Stage::RxEpdDiscard,
            Stage::RxPpdDiscard,
            Stage::RxStaleDiscard,
            Stage::RxReasmExpire,
            Stage::RxValidate,
            Stage::RxValidateFail,
            Stage::RxReasmComplete,
            Stage::RxDmaBurst,
            Stage::RxComplete,
            Stage::CompletionPush,
            Stage::Isr,
            Stage::HostDeliver,
            Stage::SwitchEnqueue,
            Stage::SwitchDequeue,
        ];
        let names: BTreeSet<&str> = all.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), all.len(), "duplicate stage name");
        for n in names {
            assert!(n.contains('.'), "{n} not hierarchical");
        }
    }
}
