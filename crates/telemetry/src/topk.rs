//! Bounded-cardinality per-VC metrics: sharded counters + a
//! space-saving top-K heavy-hitter tracker.
//!
//! At the ROADMAP's million-VC scale a `HashMap<VcId, Counter>` is the
//! wrong shape twice over: it allocates on first touch of every VC (so
//! the hot path is no longer zero-alloc) and its memory is O(#VCs). The
//! telemetry plane instead keeps:
//!
//! * [`VcShards`] — a small fixed power-of-two array of counters,
//!   indexed by a mix of the VC id. Total cell/byte volume is exact
//!   (every cell lands in exactly one shard); per-shard totals give a
//!   coarse skew picture at O(shards) memory.
//! * [`TopK`] — the *space-saving* algorithm (Metwally, Agrawal &
//!   El Abbadi 2005): K slots of `(key, count, overestimate)`. A hit on
//!   a tracked key increments it; a miss on a full table evicts the
//!   current minimum and inherits its count as the new key's
//!   overestimate bound. Guarantees: any key whose true count exceeds
//!   count_min is in the table, and each reported count overshoots
//!   the true count by at most the slot's recorded `err`.
//!
//! Both structures are deterministic (no hashing randomness — the shard
//! mix is a fixed integer permutation), allocation-free after
//! construction, and `merge`-able in the weaker heavy-hitter sense
//! (counts add; error bounds add conservatively).

/// Number of counter shards in [`VcShards`]. Power of two so the mix
/// reduces with a mask.
pub const VC_SHARDS: usize = 64;

/// Default number of heavy-hitter slots tracked by the pipeline.
pub const DEFAULT_TOP_K: usize = 16;

/// Fixed integer mix (splitmix64 finalizer) so shard assignment is
/// uniform-ish in the low bits even for sequential VC ids, yet fully
/// deterministic across runs and platforms.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Exact total-volume accounting sharded across [`VC_SHARDS`] buckets.
#[derive(Clone, Debug)]
pub struct VcShards {
    cells: [u64; VC_SHARDS],
    bytes: [u64; VC_SHARDS],
}

impl Default for VcShards {
    fn default() -> Self {
        Self::new()
    }
}

impl VcShards {
    /// New zeroed shard set.
    pub fn new() -> Self {
        Self {
            cells: [0; VC_SHARDS],
            bytes: [0; VC_SHARDS],
        }
    }

    /// Shard index for a VC id (deterministic, mask of a fixed mix).
    #[inline]
    pub fn shard_of(vc: u32) -> usize {
        (mix64(vc as u64) & (VC_SHARDS as u64 - 1)) as usize
    }

    /// Account one cell of `bytes` payload for `vc`.
    #[inline]
    pub fn record(&mut self, vc: u32, bytes: u64) {
        let s = Self::shard_of(vc);
        self.cells[s] += 1;
        self.bytes[s] += bytes;
    }

    /// Exact total cells across all shards.
    pub fn total_cells(&self) -> u64 {
        self.cells.iter().sum()
    }

    /// Exact total bytes across all shards.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Per-shard cell counts (skew picture).
    pub fn cells(&self) -> &[u64; VC_SHARDS] {
        &self.cells
    }

    /// Largest single-shard cell count.
    pub fn max_shard_cells(&self) -> u64 {
        self.cells.iter().copied().max().unwrap_or(0)
    }

    /// Fold another shard set in (exact: counters add).
    pub fn merge(&mut self, other: &VcShards) {
        for i in 0..VC_SHARDS {
            self.cells[i] += other.cells[i];
            self.bytes[i] += other.bytes[i];
        }
    }
}

/// One heavy-hitter slot: reported `count` overshoots the true count by
/// at most `err`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TopEntry {
    /// Tracked key (VC id).
    pub key: u32,
    /// Estimated count (true count ≤ `count` ≤ true count + `err`).
    pub count: u64,
    /// Overestimate bound inherited at eviction time.
    pub err: u64,
}

/// Space-saving top-K tracker: O(K) memory regardless of key
/// cardinality, zero allocation after `new`.
///
/// K is small (tens), so a linear scan beats any pointer-chasing
/// structure: the whole table is one or two cache lines. A one-entry
/// "last hit" cache short-circuits the common bursty case where
/// consecutive cells belong to the same VC.
#[derive(Clone, Debug)]
pub struct TopK {
    slots: Vec<TopEntry>,
    k: usize,
    last_idx: usize,
    total: u64,
}

impl TopK {
    /// New tracker with `k` slots (clamped to ≥1). Allocates the slot
    /// table once, here, never again.
    pub fn new(k: usize) -> Self {
        let k = k.max(1);
        Self {
            slots: Vec::with_capacity(k),
            k,
            last_idx: 0,
            total: 0,
        }
    }

    /// Tracker with [`DEFAULT_TOP_K`] slots.
    pub fn with_default_k() -> Self {
        Self::new(DEFAULT_TOP_K)
    }

    /// Offer one observation of `key` with weight `w` (cells use 1).
    #[inline]
    pub fn offer(&mut self, key: u32, w: u64) {
        self.total += w;
        // Bursty traffic hits the same VC back-to-back; check the last
        // slot touched before scanning.
        if let Some(e) = self.slots.get_mut(self.last_idx) {
            if e.key == key {
                e.count += w;
                return;
            }
        }
        if let Some(i) = self.slots.iter().position(|e| e.key == key) {
            self.slots[i].count += w;
            self.last_idx = i;
            return;
        }
        if self.slots.len() < self.k {
            self.last_idx = self.slots.len();
            self.slots.push(TopEntry {
                key,
                count: w,
                err: 0,
            });
            return;
        }
        // Space-saving eviction: replace the minimum, inherit its count
        // as the overestimate bound for the newcomer.
        let (mi, min) = self
            .slots
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.count)
            .map(|(i, e)| (i, e.count))
            .expect("k >= 1");
        self.slots[mi] = TopEntry {
            key,
            count: min + w,
            err: min,
        };
        self.last_idx = mi;
    }

    /// Total weight offered directly to this tracker (exact); a merge
    /// adds the other tracker's *tracked* weight.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of slots configured.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Entries sorted by estimated count descending, key ascending on
    /// ties — a deterministic order suitable for golden reports.
    pub fn top(&self) -> Vec<TopEntry> {
        let mut v = self.slots.clone();
        v.sort_by(|a, b| b.count.cmp(&a.count).then(a.key.cmp(&b.key)));
        v
    }

    /// Any key whose true count exceeds this threshold is guaranteed to
    /// be present in the table (the space-saving min-count bound).
    pub fn guaranteed_threshold(&self) -> u64 {
        if self.slots.len() < self.k {
            0
        } else {
            self.slots.iter().map(|e| e.count).min().unwrap_or(0)
        }
    }

    /// Fold another tracker in: counts for shared keys add exactly;
    /// distinct keys are re-offered with their (count, err) carried as
    /// a conservative bound. The result keeps the heavy-hitter
    /// guarantee with error bounds at most `err_a + err_b + min_count`.
    pub fn merge(&mut self, other: &TopK) {
        for e in other.top() {
            self.offer_with_err(e.key, e.count, e.err);
        }
    }

    fn offer_with_err(&mut self, key: u32, w: u64, err: u64) {
        self.total += w;
        if let Some(i) = self.slots.iter().position(|e| e.key == key) {
            self.slots[i].count += w;
            self.slots[i].err += err;
            self.last_idx = i;
            return;
        }
        if self.slots.len() < self.k {
            self.last_idx = self.slots.len();
            self.slots.push(TopEntry { key, count: w, err });
            return;
        }
        let (mi, min) = self
            .slots
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.count)
            .map(|(i, e)| (i, e.count))
            .expect("k >= 1");
        self.slots[mi] = TopEntry {
            key,
            count: min + w,
            err: min + err,
        };
        self.last_idx = mi;
    }
}

/// The per-VC metrics bundle the pipeline carries: exact sharded
/// volume plus heavy-hitter cells and bytes trackers.
#[derive(Clone, Debug)]
pub struct VcMetrics {
    /// Exact sharded cell/byte volume.
    pub shards: VcShards,
    /// Heavy hitters by cell count.
    pub top_cells: TopK,
}

impl Default for VcMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl VcMetrics {
    /// Default-K bundle.
    pub fn new() -> Self {
        Self {
            shards: VcShards::new(),
            top_cells: TopK::with_default_k(),
        }
    }

    /// Account one cell of `bytes` for `vc`. O(K), no allocation.
    #[inline]
    pub fn record_cell(&mut self, vc: u32, bytes: u64) {
        self.shards.record(vc, bytes);
        self.top_cells.offer(vc, 1);
    }

    /// Fold another bundle in.
    pub fn merge(&mut self, other: &VcMetrics) {
        self.shards.merge(&other.shards);
        self.top_cells.merge(&other.top_cells);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_tracking_below_k() {
        let mut t = TopK::new(8);
        for vc in 0..5u32 {
            for _ in 0..=vc {
                t.offer(vc, 1);
            }
        }
        let top = t.top();
        assert_eq!(top.len(), 5);
        assert_eq!(
            top[0],
            TopEntry {
                key: 4,
                count: 5,
                err: 0
            }
        );
        assert_eq!(
            top[4],
            TopEntry {
                key: 0,
                count: 1,
                err: 0
            }
        );
        assert_eq!(t.total(), 1 + 2 + 3 + 4 + 5);
        assert_eq!(t.guaranteed_threshold(), 0);
    }

    #[test]
    fn heavy_hitters_survive_a_long_uniform_tail() {
        let mut t = TopK::new(8);
        // Two elephants...
        for _ in 0..10_000 {
            t.offer(7, 1);
            t.offer(42, 1);
        }
        // ...then a mice parade, one cell each. 10k mice over 8 slots
        // keeps the space-saving minimum (~10k/6 per mouse slot) well
        // under the elephants' 10k true counts, so the guarantee that
        // any key with true count > min stays tracked applies to them.
        for vc in 1_000..11_000u32 {
            t.offer(vc, 1);
        }
        let top = t.top();
        assert_eq!(top[0].key, 7, "tie on 10k broken by ascending key");
        let keys: Vec<u32> = top.iter().map(|e| e.key).collect();
        assert!(
            keys.contains(&7) && keys.contains(&42),
            "elephants evicted: {keys:?}"
        );
        // Space-saving bound: estimate >= true count, overshoot <= err.
        for e in top.iter().filter(|e| e.key == 7 || e.key == 42) {
            assert!(e.count >= 10_000);
            assert!(e.count - 10_000 <= e.err, "overshoot beyond bound: {e:?}");
        }
    }

    #[test]
    fn top_order_is_deterministic_on_ties() {
        let mut t = TopK::new(4);
        for vc in [9u32, 3, 7, 1] {
            t.offer(vc, 5);
        }
        let keys: Vec<u32> = t.top().iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![1, 3, 7, 9]);
    }

    #[test]
    fn merge_preserves_totals_and_shared_keys_add() {
        let mut a = TopK::new(4);
        let mut b = TopK::new(4);
        for _ in 0..100 {
            a.offer(1, 1);
            b.offer(1, 1);
            b.offer(2, 1);
        }
        let (ta, tb) = (a.total(), b.total());
        a.merge(&b);
        assert_eq!(a.total(), ta + tb);
        let top = a.top();
        assert_eq!(
            top[0],
            TopEntry {
                key: 1,
                count: 200,
                err: 0
            }
        );
        assert_eq!(
            top[1],
            TopEntry {
                key: 2,
                count: 100,
                err: 0
            }
        );
    }

    #[test]
    fn shards_total_is_exact_and_merge_adds() {
        let mut s = VcShards::new();
        for vc in 0..1000u32 {
            s.record(vc, 53);
        }
        assert_eq!(s.total_cells(), 1000);
        assert_eq!(s.total_bytes(), 53_000);
        let mut t = VcShards::new();
        t.record(5, 48);
        t.merge(&s);
        assert_eq!(t.total_cells(), 1001);
        assert_eq!(t.total_bytes(), 53_048);
        // Same VC always lands in the same shard.
        assert_eq!(VcShards::shard_of(5), VcShards::shard_of(5));
    }

    #[test]
    fn vc_metrics_bundle_records_both_views() {
        let mut m = VcMetrics::new();
        for _ in 0..10 {
            m.record_cell(3, 48);
        }
        m.record_cell(9, 48);
        assert_eq!(m.shards.total_cells(), 11);
        assert_eq!(m.top_cells.top()[0].key, 3);
    }
}
