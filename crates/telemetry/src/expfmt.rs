//! Prometheus-style text exposition of a [`Profile`].
//!
//! One deterministic snapshot render in the classic
//! `metric{label="…"} value` line format: activity time counters,
//! per-component utilization, occupancy gauges and windowed
//! high-watermark utilization. The output is stable across runs of the
//! same simulation (no timestamps, canonical ordering), so it can be
//! golden-tested and diffed.

use crate::profiler::{Activity, Component, Profile};
use hni_sim::stats::Histogram;
use hni_sim::Duration;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape a label *value* per the text exposition format: backslash,
/// double-quote and newline are the only characters that need it.
pub fn escape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render one Prometheus **histogram** family from log₂-bucketed
/// [`Histogram`]s: cumulative `_bucket{le="…"}` samples at each
/// occupied bucket's upper bound, a terminal `le="+Inf"`, then `_sum`
/// and `_count`. Bucket bounds are picoseconds (the histograms'
/// convention throughout the workspace).
pub fn expose_histogram_family(
    out: &mut String,
    name: &str,
    help: &str,
    series: &[(&[(&str, &str)], &Histogram)],
) {
    writeln!(out, "# HELP {name} {}", escape_help(help)).unwrap();
    writeln!(out, "# TYPE {name} histogram").unwrap();
    for (labels, h) in series {
        let mut cum = 0u64;
        for (i, &c) in h.bucket_counts().iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            let le = Histogram::bucket_upper_bound(i).to_string();
            writeln!(
                out,
                "{name}_bucket{} {cum}",
                render_labels(labels, Some(("le", &le)))
            )
            .unwrap();
        }
        writeln!(
            out,
            "{name}_bucket{} {}",
            render_labels(labels, Some(("le", "+Inf"))),
            h.count()
        )
        .unwrap();
        writeln!(out, "{name}_sum{} {}", render_labels(labels, None), h.sum()).unwrap();
        writeln!(
            out,
            "{name}_count{} {}",
            render_labels(labels, None),
            h.count()
        )
        .unwrap();
    }
}

/// HELP text escaping: backslash and newline only (quotes are legal).
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn render_labels(labels: &[(&str, &str)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for &(k, v) in labels.iter().chain(extra.as_ref()) {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    out.push('}');
    out
}

/// Render a profile snapshot in Prometheus text exposition format.
pub fn expose(profile: &Profile) -> String {
    let mut out = String::new();

    writeln!(out, "# TYPE hni_profile_span_seconds gauge").unwrap();
    writeln!(
        out,
        "hni_profile_span_seconds {:.9}",
        profile.span().as_s_f64()
    )
    .unwrap();

    writeln!(out, "# TYPE hni_activity_time_seconds counter").unwrap();
    for c in Component::ALL {
        for a in Activity::ALL {
            let t = profile.total(c, a);
            if t > Duration::ZERO {
                writeln!(
                    out,
                    "hni_activity_time_seconds{{component=\"{}\",activity=\"{}\"}} {:.9}",
                    c.name(),
                    a.name(),
                    t.as_s_f64()
                )
                .unwrap();
            }
        }
    }

    writeln!(out, "# TYPE hni_component_utilization gauge").unwrap();
    for c in Component::ALL {
        if profile.active_time(c) > Duration::ZERO {
            writeln!(
                out,
                "hni_component_utilization{{component=\"{}\"}} {:.6}",
                c.name(),
                profile.utilization(c)
            )
            .unwrap();
        }
    }

    writeln!(out, "# TYPE hni_window_utilization_max gauge").unwrap();
    for c in Component::ALL {
        if let Some((_, u)) = profile.high_watermark(c) {
            writeln!(
                out,
                "hni_window_utilization_max{{component=\"{}\"}} {:.6}",
                c.name(),
                u
            )
            .unwrap();
        }
    }

    writeln!(out, "# TYPE hni_occupancy_peak gauge").unwrap();
    writeln!(out, "# TYPE hni_occupancy_mean gauge").unwrap();
    for c in Component::ALL {
        let g = profile.gauge(c);
        if g.peak > 0 {
            writeln!(
                out,
                "hni_occupancy_peak{{component=\"{}\"}} {}",
                c.name(),
                g.peak
            )
            .unwrap();
            writeln!(
                out,
                "hni_occupancy_mean{{component=\"{}\"}} {:.6}",
                c.name(),
                g.mean
            )
            .unwrap();
        }
    }

    out
}

/// Conformance-check a text exposition document. Returns the list of
/// violations (empty = conformant). Checked rules:
///
/// * every line is blank, a `# HELP`/`# TYPE` comment, or a sample of
///   the form `name{labels} value`;
/// * metric and label names match the Prometheus grammar; label values
///   are properly quoted and use only the legal escapes (`\\`, `\"`,
///   `\n`);
/// * `# TYPE` appears at most once per family and before any of the
///   family's samples; `# HELP` likewise precedes the samples;
/// * sample values parse as floats (`+Inf`/`-Inf`/`NaN` allowed);
/// * for each `histogram`-typed family and label set: `le` ascends,
///   cumulative bucket counts never decrease, the terminal bucket is
///   `le="+Inf"`, and `_count` equals the `+Inf` bucket.
pub fn validate(text: &str) -> Result<(), Vec<String>> {
    let mut errs = Vec::new();
    let mut type_of: BTreeMap<String, String> = BTreeMap::new();
    let mut help_seen: BTreeMap<String, bool> = BTreeMap::new();
    let mut sampled: BTreeMap<String, bool> = BTreeMap::new();
    // (family, non-le labels) -> [(le, cumulative count)]
    let mut buckets: BTreeMap<(String, String), Vec<(f64, f64)>> = BTreeMap::new();
    let mut counts: BTreeMap<(String, String), f64> = BTreeMap::new();
    let mut sums: BTreeMap<(String, String), bool> = BTreeMap::new();

    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let (kind, rest) = match rest.split_once(' ') {
                Some(p) => p,
                None => {
                    errs.push(format!("line {ln}: bare comment keyword"));
                    continue;
                }
            };
            let fam = rest.split(' ').next().unwrap_or("").to_string();
            if !valid_metric_name(&fam) {
                errs.push(format!("line {ln}: invalid metric name '{fam}'"));
                continue;
            }
            match kind {
                "HELP" => {
                    if help_seen.insert(fam.clone(), true).is_some() {
                        errs.push(format!("line {ln}: duplicate HELP for {fam}"));
                    }
                    if sampled.contains_key(&fam) {
                        errs.push(format!("line {ln}: HELP for {fam} after its samples"));
                    }
                }
                "TYPE" => {
                    let ty = rest[fam.len()..].trim().to_string();
                    if !["counter", "gauge", "histogram", "summary", "untyped"]
                        .contains(&ty.as_str())
                    {
                        errs.push(format!("line {ln}: unknown TYPE '{ty}' for {fam}"));
                    }
                    if type_of.insert(fam.clone(), ty).is_some() {
                        errs.push(format!("line {ln}: duplicate TYPE for {fam}"));
                    }
                    if sampled.contains_key(&fam) {
                        errs.push(format!("line {ln}: TYPE for {fam} after its samples"));
                    }
                }
                other => errs.push(format!("line {ln}: unknown comment '{other}'")),
            }
            continue;
        }
        if line.starts_with('#') {
            // Plain comments are legal and uninterpreted.
            continue;
        }
        let (name, labels, value) = match parse_sample(line) {
            Ok(t) => t,
            Err(e) => {
                errs.push(format!("line {ln}: {e}"));
                continue;
            }
        };
        let fam = family_of(&name, &type_of);
        sampled.insert(fam.clone(), true);
        if type_of.get(&fam).map(String::as_str) == Some("histogram") {
            let base: Vec<(String, String)> =
                labels.iter().filter(|(k, _)| k != "le").cloned().collect();
            let base_key = format!("{base:?}");
            let key = (fam.clone(), base_key);
            if name.ends_with("_bucket") {
                let le = labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| v.clone());
                match le.as_deref().map(parse_float) {
                    Some(Some(le)) => buckets.entry(key).or_default().push((le, value)),
                    Some(None) => errs.push(format!("line {ln}: unparseable le")),
                    None => errs.push(format!("line {ln}: _bucket sample without le")),
                }
            } else if name.ends_with("_count") {
                counts.insert(key, value);
            } else if name.ends_with("_sum") {
                sums.insert(key, true);
            } else {
                errs.push(format!(
                    "line {ln}: sample '{name}' in histogram family {fam} is not _bucket/_sum/_count"
                ));
            }
        }
    }

    for ((fam, base), series) in &buckets {
        for w in series.windows(2) {
            if w[1].0 <= w[0].0 {
                errs.push(format!("{fam}{base}: le not strictly ascending"));
            }
            if w[1].1 < w[0].1 {
                errs.push(format!("{fam}{base}: cumulative bucket count decreased"));
            }
        }
        match series.last() {
            Some(&(le, cum)) if le.is_infinite() && le > 0.0 => {
                if let Some(&c) = counts.get(&(fam.clone(), base.clone())) {
                    if c != cum {
                        errs.push(format!("{fam}{base}: _count {c} != +Inf bucket {cum}"));
                    }
                } else {
                    errs.push(format!("{fam}{base}: histogram missing _count"));
                }
            }
            _ => errs.push(format!("{fam}{base}: terminal bucket is not le=\"+Inf\"")),
        }
        if !sums.contains_key(&(fam.clone(), base.clone())) {
            errs.push(format!("{fam}{base}: histogram missing _sum"));
        }
    }

    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

/// The family a sample belongs to: for histogram-typed families the
/// `_bucket`/`_sum`/`_count` suffix is stripped; otherwise the sample
/// name is the family.
fn family_of(name: &str, type_of: &BTreeMap<String, String>) -> String {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if type_of.get(base).map(String::as_str) == Some("histogram") {
                return base.to_string();
            }
        }
    }
    name.to_string()
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_float(s: &str) -> Option<f64> {
    match s {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        s => s.parse().ok(),
    }
}

/// A parsed sample line: metric name, unescaped labels in document
/// order, and the sample value.
type Sample = (String, Vec<(String, String)>, f64);

/// Parse `name{labels} value` (labels optional).
fn parse_sample(line: &str) -> Result<Sample, String> {
    let name_end = line
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == ':'))
        .unwrap_or(line.len());
    let name = &line[..name_end];
    if !valid_metric_name(name) {
        return Err(format!("invalid metric name in '{line}'"));
    }
    let mut rest = &line[name_end..];
    let mut labels = Vec::new();
    if let Some(r) = rest.strip_prefix('{') {
        let mut chars = r.char_indices();
        loop {
            // label name
            let start = match chars.clone().next() {
                Some((i, '}')) => {
                    chars.next();
                    rest = &r[i + 1..];
                    break;
                }
                Some((i, _)) => i,
                None => return Err("unterminated label set".into()),
            };
            let eq = loop {
                match chars.next() {
                    Some((i, '=')) => break i,
                    Some((_, c)) if c.is_ascii_alphanumeric() || c == '_' => {}
                    _ => return Err(format!("bad label name in '{line}'")),
                }
            };
            let lname = &r[start..eq];
            if !valid_label_name(lname) {
                return Err(format!("invalid label name '{lname}'"));
            }
            match chars.next() {
                Some((_, '"')) => {}
                _ => return Err(format!("label value not quoted in '{line}'")),
            }
            let mut value = String::new();
            loop {
                match chars.next() {
                    Some((_, '"')) => break,
                    Some((_, '\\')) => match chars.next() {
                        Some((_, '\\')) => value.push('\\'),
                        Some((_, '"')) => value.push('"'),
                        Some((_, 'n')) => value.push('\n'),
                        other => {
                            return Err(format!("illegal escape {other:?} in '{line}'"));
                        }
                    },
                    Some((_, c)) => value.push(c),
                    None => return Err("unterminated label value".into()),
                }
            }
            labels.push((lname.to_string(), value));
            match chars.clone().next() {
                Some((_, ',')) => {
                    chars.next();
                }
                Some((i, '}')) => {
                    chars.next();
                    rest = &r[i + 1..];
                    break;
                }
                _ => return Err(format!("expected ',' or '}}' in '{line}'")),
            }
        }
    }
    let value_str = rest.trim();
    if value_str.is_empty() {
        return Err(format!("missing sample value in '{line}'"));
    }
    // A timestamp after the value is legal; take the first token.
    let value_tok = value_str.split(' ').next().unwrap();
    let value = parse_float(value_tok).ok_or_else(|| format!("bad sample value '{value_tok}'"))?;
    Ok((name.to_string(), labels, value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{CycleProfiler, Profiler};
    use hni_sim::Time;

    fn sample_profile() -> Profile {
        let mut p = CycleProfiler::with_window(Duration::from_us(10));
        p.charge(
            Component::TxEngine,
            Activity::Busy,
            Time::ZERO,
            Duration::from_us(4),
        );
        p.charge(
            Component::TxBus,
            Activity::Transfer,
            Time::from_us(1),
            Duration::from_us(2),
        );
        p.charge(
            Component::TxBus,
            Activity::Arbitration,
            Time::from_us(3),
            Duration::from_us(1),
        );
        p.gauge(Component::TxFifo, Time::ZERO, 3);
        p.gauge(Component::TxFifo, Time::from_us(5), 0);
        p.snapshot(Time::from_us(10))
    }

    #[test]
    fn exposition_contains_all_families_and_samples() {
        let text = expose(&sample_profile());
        assert!(text.contains("# TYPE hni_profile_span_seconds gauge"));
        assert!(text.contains("hni_profile_span_seconds 0.000010000"));
        assert!(
            text.contains("hni_activity_time_seconds{component=\"tx.engine\",activity=\"busy\"} ")
        );
        assert!(text
            .contains("hni_activity_time_seconds{component=\"tx.bus\",activity=\"arbitration\"} "));
        assert!(text.contains("hni_component_utilization{component=\"tx.engine\"} 0.400000"));
        // Bus: (2 + 1) µs over 10 µs.
        assert!(text.contains("hni_component_utilization{component=\"tx.bus\"} 0.300000"));
        assert!(text.contains("hni_occupancy_peak{component=\"tx.fifo\"} 3"));
        assert!(text.contains("hni_occupancy_mean{component=\"tx.fifo\"} 1.500000"));
        assert!(text.contains("hni_window_utilization_max{component=\"tx.engine\"} 0.400000"));
        // Uncharged components are absent.
        assert!(!text.contains("rx.engine"));
    }

    #[test]
    fn exposition_is_deterministic() {
        assert_eq!(expose(&sample_profile()), expose(&sample_profile()));
    }

    #[test]
    fn label_values_escape_quotes_backslashes_newlines() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
    }

    #[test]
    fn histogram_family_is_cumulative_with_inf_terminal() {
        let mut h = Histogram::new();
        for v in [100u64, 100, 1000, 50_000] {
            h.record(v);
        }
        let mut out = String::new();
        expose_histogram_family(
            &mut out,
            "hni_stage_latency_ps",
            "per-stage latency",
            &[(&[("stage", "tx")], &h)],
        );
        assert!(out.contains("# HELP hni_stage_latency_ps per-stage latency"));
        assert!(out.contains("# TYPE hni_stage_latency_ps histogram"));
        assert!(out.contains("hni_stage_latency_ps_bucket{stage=\"tx\",le=\"+Inf\"} 4"));
        assert!(out.contains("hni_stage_latency_ps_sum{stage=\"tx\"} 51200"));
        assert!(out.contains("hni_stage_latency_ps_count{stage=\"tx\"} 4"));
        // Cumulative counts never decrease along the le axis.
        let cums: Vec<u64> = out
            .lines()
            .filter(|l| l.contains("_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(cums.windows(2).all(|w| w[0] <= w[1]), "{cums:?}");
        validate(&out).expect("family must be conformant");
    }

    #[test]
    fn profile_exposition_is_conformant() {
        validate(&expose(&sample_profile())).expect("expose output must validate");
    }

    #[test]
    fn validator_accepts_escaped_labels_and_inf() {
        let doc = "# HELP m ok\n# TYPE m gauge\nm{path=\"C:\\\\x\",q=\"say \\\"hi\\\"\"} 1\nm{v=\"+Inf\"} +Inf\n";
        validate(doc).expect("legal escapes must pass");
    }

    #[test]
    fn validator_rejects_type_after_samples_and_duplicates() {
        let late = "m 1\n# TYPE m gauge\n";
        let errs = validate(late).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("after its samples")),
            "{errs:?}"
        );
        let dup = "# TYPE m gauge\n# TYPE m gauge\nm 1\n";
        let errs = validate(dup).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("duplicate TYPE")),
            "{errs:?}"
        );
    }

    #[test]
    fn validator_rejects_histogram_shape_violations() {
        // Missing +Inf terminal bucket.
        let no_inf = "# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_sum 5\nh_count 1\n";
        let errs = validate(no_inf).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("+Inf")), "{errs:?}");
        // le not ascending.
        let bad_order =
            "# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_bucket{le=\"5\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 5\nh_count 2\n";
        let errs = validate(bad_order).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("ascending")), "{errs:?}");
        // Cumulative count decreases.
        let decreasing =
            "# TYPE h histogram\nh_bucket{le=\"10\"} 3\nh_bucket{le=\"+Inf\"} 2\nh_sum 5\nh_count 2\n";
        let errs = validate(decreasing).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("decreased")), "{errs:?}");
        // _count disagrees with the +Inf bucket.
        let mismatch = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 5\nh_count 3\n";
        let errs = validate(mismatch).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("!= +Inf")), "{errs:?}");
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        for (doc, needle) in [
            ("9bad_name 1\n", "invalid metric name"),
            ("m{le=\"x} 1\n", "unterminated"),
            ("m{l=\"a\\q\"} 1\n", "illegal escape"),
            ("m{l=bare} 1\n", "not quoted"),
            ("m \n", "missing sample value"),
            ("m notanumber\n", "bad sample value"),
            ("# FOO m 1\n", "unknown comment"),
            ("# TYPE m sideways\nm 1\n", "unknown TYPE"),
        ] {
            let errs = validate(doc).unwrap_err();
            assert!(
                errs.iter().any(|e| e.contains(needle)),
                "{doc:?} -> {errs:?}"
            );
        }
    }
}
