//! Prometheus-style text exposition of a [`Profile`].
//!
//! One deterministic snapshot render in the classic
//! `metric{label="…"} value` line format: activity time counters,
//! per-component utilization, occupancy gauges and windowed
//! high-watermark utilization. The output is stable across runs of the
//! same simulation (no timestamps, canonical ordering), so it can be
//! golden-tested and diffed.

use crate::profiler::{Activity, Component, Profile};
use hni_sim::Duration;
use std::fmt::Write as _;

/// Render a profile snapshot in Prometheus text exposition format.
pub fn expose(profile: &Profile) -> String {
    let mut out = String::new();

    writeln!(out, "# TYPE hni_profile_span_seconds gauge").unwrap();
    writeln!(
        out,
        "hni_profile_span_seconds {:.9}",
        profile.span().as_s_f64()
    )
    .unwrap();

    writeln!(out, "# TYPE hni_activity_time_seconds counter").unwrap();
    for c in Component::ALL {
        for a in Activity::ALL {
            let t = profile.total(c, a);
            if t > Duration::ZERO {
                writeln!(
                    out,
                    "hni_activity_time_seconds{{component=\"{}\",activity=\"{}\"}} {:.9}",
                    c.name(),
                    a.name(),
                    t.as_s_f64()
                )
                .unwrap();
            }
        }
    }

    writeln!(out, "# TYPE hni_component_utilization gauge").unwrap();
    for c in Component::ALL {
        if profile.active_time(c) > Duration::ZERO {
            writeln!(
                out,
                "hni_component_utilization{{component=\"{}\"}} {:.6}",
                c.name(),
                profile.utilization(c)
            )
            .unwrap();
        }
    }

    writeln!(out, "# TYPE hni_window_utilization_max gauge").unwrap();
    for c in Component::ALL {
        if let Some((_, u)) = profile.high_watermark(c) {
            writeln!(
                out,
                "hni_window_utilization_max{{component=\"{}\"}} {:.6}",
                c.name(),
                u
            )
            .unwrap();
        }
    }

    writeln!(out, "# TYPE hni_occupancy_peak gauge").unwrap();
    writeln!(out, "# TYPE hni_occupancy_mean gauge").unwrap();
    for c in Component::ALL {
        let g = profile.gauge(c);
        if g.peak > 0 {
            writeln!(
                out,
                "hni_occupancy_peak{{component=\"{}\"}} {}",
                c.name(),
                g.peak
            )
            .unwrap();
            writeln!(
                out,
                "hni_occupancy_mean{{component=\"{}\"}} {:.6}",
                c.name(),
                g.mean
            )
            .unwrap();
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{CycleProfiler, Profiler};
    use hni_sim::Time;

    fn sample_profile() -> Profile {
        let mut p = CycleProfiler::with_window(Duration::from_us(10));
        p.charge(
            Component::TxEngine,
            Activity::Busy,
            Time::ZERO,
            Duration::from_us(4),
        );
        p.charge(
            Component::TxBus,
            Activity::Transfer,
            Time::from_us(1),
            Duration::from_us(2),
        );
        p.charge(
            Component::TxBus,
            Activity::Arbitration,
            Time::from_us(3),
            Duration::from_us(1),
        );
        p.gauge(Component::TxFifo, Time::ZERO, 3);
        p.gauge(Component::TxFifo, Time::from_us(5), 0);
        p.snapshot(Time::from_us(10))
    }

    #[test]
    fn exposition_contains_all_families_and_samples() {
        let text = expose(&sample_profile());
        assert!(text.contains("# TYPE hni_profile_span_seconds gauge"));
        assert!(text.contains("hni_profile_span_seconds 0.000010000"));
        assert!(
            text.contains("hni_activity_time_seconds{component=\"tx.engine\",activity=\"busy\"} ")
        );
        assert!(text
            .contains("hni_activity_time_seconds{component=\"tx.bus\",activity=\"arbitration\"} "));
        assert!(text.contains("hni_component_utilization{component=\"tx.engine\"} 0.400000"));
        // Bus: (2 + 1) µs over 10 µs.
        assert!(text.contains("hni_component_utilization{component=\"tx.bus\"} 0.300000"));
        assert!(text.contains("hni_occupancy_peak{component=\"tx.fifo\"} 3"));
        assert!(text.contains("hni_occupancy_mean{component=\"tx.fifo\"} 1.500000"));
        assert!(text.contains("hni_window_utilization_max{component=\"tx.engine\"} 0.400000"));
        // Uncharged components are absent.
        assert!(!text.contains("rx.engine"));
    }

    #[test]
    fn exposition_is_deterministic() {
        assert_eq!(expose(&sample_profile()), expose(&sample_profile()));
    }
}
