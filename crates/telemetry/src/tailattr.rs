//! Cohort critical-path attribution: *why* is the tail slow?
//!
//! The histogram says p99 regressed; the waterfall explains one packet.
//! This module closes the gap between them. From a [`PacketSpans`]
//! index it forms two cohorts of completed packets —
//!
//! * **tail**: total latency at or above the exact p99 of the indexed
//!   totals (nearest-rank, always ≥ 1 packet), and
//! * **median**: total latency at or below the exact p50 —
//!
//! then compares the cohorts' mean time per *(stage, wait|service)*
//! slot. The per-slot difference is that slot's **excess**; dividing by
//! the cohorts' total-latency difference gives each slot's **share** of
//! the tail's excess. Shares sum to 1 by construction (the spans
//! telescope), so the table reads as a complete blame decomposition:
//! "p99 excess is 71% wait at rx cell" names the reassembler queue.
//!
//! Cohorts here are exact order statistics over retained totals — not
//! `HdrHist` buckets, whose log2 quantization can misplace packets
//! near a cohort edge by up to 2×. The histogram threshold is only
//! used when carving cohorts out of the *reservoir* (see
//! `TailReservoir::cohort`), where exact totals are gone.

use crate::spans::{PacketSpans, STAGE_LABELS};
use hni_sim::Duration;
use std::fmt::Write as _;

const PS_PER_US: f64 = 1e6;

/// One *(stage, part)* slot's contribution to the tail's excess.
#[derive(Clone, Copy, Debug)]
pub struct StageShare {
    /// Stage label (matches the R-F3 waterfall columns).
    pub label: &'static str,
    /// `"wait"` (queued before the engine) or `"service"` (worked on).
    pub part: &'static str,
    /// Mean time in this slot across the median cohort, µs.
    pub median_us: f64,
    /// Mean time in this slot across the tail cohort, µs.
    pub tail_us: f64,
    /// `tail_us − median_us` (may be negative), µs.
    pub excess_us: f64,
    /// Fraction of the total tail excess this slot explains.
    pub share: f64,
}

/// The tail-vs-median blame table for one traced run.
#[derive(Clone, Debug)]
pub struct TailAttribution {
    /// Completed packets the cohorts were drawn from.
    pub packets: usize,
    /// Packets in the tail (≥ p99) cohort.
    pub tail_count: usize,
    /// Packets in the median (≤ p50) cohort.
    pub median_count: usize,
    /// Exact p99 total-latency threshold defining the tail cohort.
    pub tail_threshold: Duration,
    /// Mean total latency of the median cohort, µs.
    pub median_total_us: f64,
    /// Mean total latency of the tail cohort, µs.
    pub tail_total_us: f64,
    /// Per-slot decomposition, largest excess first.
    pub rows: Vec<StageShare>,
}

/// Attribute the p99-vs-median latency excess to pipeline slots.
///
/// Returns `None` when fewer than two packets completed or the tail
/// cohort is no slower than the median cohort (nothing to attribute).
pub fn attribute_tail(spans: &PacketSpans) -> Option<TailAttribution> {
    let mut totals: Vec<(u64, u32)> = spans
        .packets()
        .filter_map(|p| Some((spans.life(p)?.total()?.as_ps(), p)))
        .collect();
    if totals.len() < 2 {
        return None;
    }
    totals.sort_unstable();
    let p50 = nearest_rank(&totals, 0.50);
    let p99 = nearest_rank(&totals, 0.99);

    let mut tail = Cohort::default();
    let mut median = Cohort::default();
    for &(total, pkt) in &totals {
        let life = spans.life(pkt).expect("indexed above");
        if total >= p99 {
            tail.absorb(total, life.breakdown());
        }
        if total <= p50 {
            median.absorb(total, life.breakdown());
        }
    }
    let total_excess_us = tail.mean_total_us() - median.mean_total_us();
    // Strictly-positive gate that also rejects NaN (empty cohorts).
    if total_excess_us.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return None;
    }

    let mut rows = Vec::with_capacity(STAGE_LABELS.len() * 2);
    for (i, label) in STAGE_LABELS.iter().enumerate() {
        for (j, part) in ["wait", "service"].iter().enumerate() {
            let median_us = median.mean_slot_us(i, j);
            let tail_us = tail.mean_slot_us(i, j);
            let excess_us = tail_us - median_us;
            rows.push(StageShare {
                label,
                part,
                median_us,
                tail_us,
                excess_us,
                share: excess_us / total_excess_us,
            });
        }
    }
    rows.sort_by(|a, b| b.excess_us.total_cmp(&a.excess_us));
    Some(TailAttribution {
        packets: totals.len(),
        tail_count: tail.count,
        median_count: median.count,
        tail_threshold: Duration::from_ps(p99),
        median_total_us: median.mean_total_us(),
        tail_total_us: tail.mean_total_us(),
        rows,
    })
}

impl TailAttribution {
    /// The slot explaining the largest share of the tail's excess.
    pub fn blamed(&self) -> &StageShare {
        &self.rows[0]
    }

    /// One-line verdict: `p99 excess is 71% wait at rx cell`.
    pub fn headline(&self) -> String {
        let b = self.blamed();
        format!(
            "p99 excess is {:.0}% {} at {}",
            b.share * 100.0,
            b.part,
            b.label
        )
    }

    /// Text rendering: headline, cohort summary, and the blame table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headline());
        let _ = writeln!(
            out,
            "cohorts: tail {} pkts (>= {:.3} us) vs median {} pkts, of {} completed",
            self.tail_count,
            self.tail_threshold.as_us_f64(),
            self.median_count,
            self.packets
        );
        let _ = writeln!(
            out,
            "mean total: tail {:.3} us, median {:.3} us, excess {:.3} us",
            self.tail_total_us,
            self.median_total_us,
            self.tail_total_us - self.median_total_us
        );
        let _ = writeln!(
            out,
            "  {:<12} {:<8} {:>11} {:>11} {:>11} {:>7}",
            "stage", "part", "median us", "tail us", "excess us", "share"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "  {:<12} {:<8} {:>11.3} {:>11.3} {:>11.3} {:>6.1}%",
                r.label,
                r.part,
                r.median_us,
                r.tail_us,
                r.excess_us,
                r.share * 100.0
            );
        }
        out
    }

    /// Prometheus exposition of the decomposition: per-slot shares and
    /// cohort means as gauge families (passes `expfmt::validate`).
    pub fn prom(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "# HELP hni_tail_stage_share Share of the p99-vs-median latency \
             excess attributed to each stage part.\n\
             # TYPE hni_tail_stage_share gauge\n",
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "hni_tail_stage_share{{stage=\"{}\",part=\"{}\"}} {:.6}",
                r.label, r.part, r.share
            );
        }
        out.push_str(
            "# HELP hni_tail_cohort_mean_us Mean total latency per cohort in \
             microseconds.\n\
             # TYPE hni_tail_cohort_mean_us gauge\n",
        );
        let _ = writeln!(
            out,
            "hni_tail_cohort_mean_us{{cohort=\"tail\"}} {:.6}",
            self.tail_total_us
        );
        let _ = writeln!(
            out,
            "hni_tail_cohort_mean_us{{cohort=\"median\"}} {:.6}",
            self.median_total_us
        );
        out
    }
}

/// Per-cohort accumulator: packet count, total-latency sum, and the
/// wait/service sums per stage slot.
#[derive(Default)]
struct Cohort {
    count: usize,
    total_ps: u64,
    slots_ps: [[u64; 2]; STAGE_LABELS.len()],
}

impl Cohort {
    fn absorb(&mut self, total_ps: u64, breakdown: Vec<crate::spans::SpanStage>) {
        self.count += 1;
        self.total_ps += total_ps;
        for (i, s) in breakdown.iter().enumerate() {
            self.slots_ps[i][0] += s.wait.as_ps();
            self.slots_ps[i][1] += s.service.as_ps();
        }
    }

    fn mean_total_us(&self) -> f64 {
        self.total_ps as f64 / self.count.max(1) as f64 / PS_PER_US
    }

    fn mean_slot_us(&self, stage: usize, part: usize) -> f64 {
        self.slots_ps[stage][part] as f64 / self.count.max(1) as f64 / PS_PER_US
    }
}

/// Nearest-rank quantile over ascending `(total, pkt)` pairs.
fn nearest_rank(sorted: &[(u64, u32)], q: f64) -> u64 {
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1].0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Phase, Stage, TraceEvent, NO_ID};
    use hni_sim::Time;

    /// A packet life whose "rx cell" stage carries `rx_wait_ns` of
    /// queue-wait; everything else is constant across packets.
    fn life(pkt: u32, base_ns: u64, rx_wait_ns: u64) -> Vec<TraceEvent> {
        let e = |ns: u64, st, ph| TraceEvent {
            time: Time::from_ns(ns),
            stage: st,
            phase: ph,
            vc: 64,
            pkt,
            cell: NO_ID,
            arg: 0,
        };
        let b = base_ns;
        let arrive = b + 2_000;
        let enter = arrive + rx_wait_ns;
        vec![
            e(b, Stage::TxDescriptor, Phase::Instant),
            e(b, Stage::TxSetup, Phase::Enter),
            e(b + 100, Stage::TxSetup, Phase::Exit),
            e(b + 200, Stage::TxDmaBurst, Phase::Instant),
            e(b + 250, Stage::TxSegment, Phase::Enter),
            e(b + 300, Stage::TxSegment, Phase::Exit),
            e(b + 1_000, Stage::TxFramer, Phase::Instant),
            e(arrive, Stage::RxCellArrive, Phase::Instant),
            e(enter, Stage::RxCell, Phase::Enter),
            e(enter + 50, Stage::RxCell, Phase::Exit),
            e(enter + 60, Stage::RxValidate, Phase::Enter),
            e(enter + 100, Stage::RxValidate, Phase::Exit),
            e(enter + 200, Stage::RxDmaBurst, Phase::Instant),
            e(enter + 210, Stage::RxComplete, Phase::Enter),
            e(enter + 250, Stage::RxComplete, Phase::Exit),
        ]
    }

    fn spans_with_tail(rx_waits_ns: &[u64]) -> PacketSpans {
        let mut ev = Vec::new();
        for (i, &w) in rx_waits_ns.iter().enumerate() {
            ev.extend(life(i as u32, i as u64 * 100_000, w));
        }
        PacketSpans::from_events(&ev)
    }

    #[test]
    fn blames_the_injected_rx_queue_wait() {
        // 19 fast packets, one with 40 µs of reassembler queue-wait.
        let mut waits = vec![10u64; 19];
        waits.push(40_000);
        let attr = attribute_tail(&spans_with_tail(&waits)).expect("attributable");
        let b = attr.blamed();
        assert_eq!(b.label, "rx cell");
        assert_eq!(b.part, "wait");
        assert!(b.share > 0.95, "share {} should dominate", b.share);
        assert_eq!(attr.tail_count, 1);
        assert!(attr.headline().contains("wait at rx cell"));
        // Shares telescope: the full table sums to ~1.
        let sum: f64 = attr.rows.iter().map(|r| r.share).sum();
        assert!((sum - 1.0).abs() < 1e-9, "shares sum to {sum}");
    }

    #[test]
    fn uniform_latency_is_unattributable() {
        let attr = attribute_tail(&spans_with_tail(&[10; 8]));
        assert!(attr.is_none(), "no excess to attribute");
        assert!(attribute_tail(&spans_with_tail(&[10])).is_none());
        assert!(attribute_tail(&PacketSpans::from_events(&[])).is_none());
    }

    #[test]
    fn render_and_prom_are_well_formed() {
        let mut waits = vec![10u64; 10];
        waits.push(20_000);
        let attr = attribute_tail(&spans_with_tail(&waits)).unwrap();
        let text = attr.render();
        assert!(text.contains("cohorts:"));
        assert!(text.contains("rx cell"));
        let prom = attr.prom();
        crate::expfmt::validate(&prom).expect("prom output must lint clean");
        assert!(prom.contains("hni_tail_stage_share{stage=\"rx cell\",part=\"wait\"}"));
        assert!(prom.contains("hni_tail_cohort_mean_us{cohort=\"tail\"}"));
    }

    #[test]
    fn incomplete_lives_are_excluded_from_cohorts() {
        let mut waits = vec![10u64; 10];
        waits.push(20_000);
        let mut ev = Vec::new();
        for (i, &w) in waits.iter().enumerate() {
            ev.extend(life(i as u32, i as u64 * 100_000, w));
        }
        // A dropped packet: tx-side events only.
        ev.extend(
            life(99, 5_000_000, 10)
                .into_iter()
                .filter(|e| matches!(e.stage, Stage::TxDescriptor | Stage::TxSetup)),
        );
        let attr = attribute_tail(&PacketSpans::from_events(&ev)).unwrap();
        assert_eq!(attr.packets, 11, "dropped packet not in cohorts");
    }
}
