//! Cycle-accounting profiler: charge every simulated interval to a
//! `(component, activity)` pair.
//!
//! Davie's analysis is an accounting exercise — where do the cycles go
//! between the link, the protocol engines, the FIFOs, the bus and the
//! host. This module makes that accounting continuous: the simulations
//! charge each interval of work (or stall) to a [`Component`] and
//! [`Activity`] through the [`Profiler`] sink trait, and the recording
//! [`CycleProfiler`] accumulates exact per-pair totals, windowed
//! utilization [`TimeSeries`] and occupancy gauges. A [`Profile`]
//! snapshot is what the attribution engine
//! ([`attribute`](crate::attribution::attribute)) and the exposition
//! formats (folded stacks, Prometheus text) are computed from.
//!
//! Like the [`Tracer`](crate::Tracer) layer, the profiler is strictly
//! zero-cost when disabled: every instrumentation point is gated on
//! [`Profiler::enabled`], and [`NullProfiler`] compiles the whole layer
//! away (golden tests prove byte-identical reports and zero extra
//! allocations).

use crate::timeseries::TimeSeries;
use hni_sim::stats::OccupancyTracker;
use hni_sim::{Duration, Time};

/// A resource simulated time can be charged to.
///
/// TX and RX keep separate bus/link components because an end-to-end run
/// simulates *two* adaptors — one per host — and merging their charges
/// would double-count a resource that exists once per interface.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Component {
    /// Transmit protocol engine (segmentation side).
    TxEngine,
    /// TURBOchannel bus on the transmit adaptor.
    TxBus,
    /// Transmit cell FIFO (occupancy gauge).
    TxFifo,
    /// SONET link, transmit direction.
    TxLink,
    /// SONET link, receive direction.
    RxLink,
    /// Receive cell FIFO (occupancy gauge).
    RxFifo,
    /// Receive protocol engine (reassembly side).
    RxEngine,
    /// Receive buffer pool (occupancy gauge).
    RxPool,
    /// TURBOchannel bus on the receive adaptor.
    RxBus,
    /// Host CPU (software SAR, driver).
    HostCpu,
    /// Switch output stage (fabric drain into the line card).
    Switch,
}

impl Component {
    /// Number of components (array dimension).
    pub const COUNT: usize = 11;

    /// Every component, in canonical (pipeline) order. This order is the
    /// deterministic tie-break everywhere components are ranked or
    /// rendered.
    pub const ALL: [Component; Component::COUNT] = [
        Component::TxEngine,
        Component::TxBus,
        Component::TxFifo,
        Component::TxLink,
        Component::RxLink,
        Component::RxFifo,
        Component::RxEngine,
        Component::RxPool,
        Component::RxBus,
        Component::HostCpu,
        Component::Switch,
    ];

    /// Stable hierarchical name (used in folded stacks and the
    /// Prometheus exposition).
    pub const fn name(self) -> &'static str {
        match self {
            Component::TxEngine => "tx.engine",
            Component::TxBus => "tx.bus",
            Component::TxFifo => "tx.fifo",
            Component::TxLink => "tx.link",
            Component::RxLink => "rx.link",
            Component::RxFifo => "rx.fifo",
            Component::RxEngine => "rx.engine",
            Component::RxPool => "rx.pool",
            Component::RxBus => "rx.bus",
            Component::HostCpu => "host.cpu",
            Component::Switch => "switch",
        }
    }
}

/// What a component was doing during a charged interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Activity {
    /// Engine executing protocol instructions.
    Busy,
    /// Data moving (bus data cycles, link cell slots, switch drain).
    Transfer,
    /// Bus overhead: burst setup and turnaround cycles.
    Arbitration,
    /// Host CPU doing segmentation/reassembly work (incl. software CRC).
    Sar,
    /// Host CPU doing driver work (programmed I/O, device interaction).
    Driver,
    /// Ready to work but waiting on an outstanding bus transfer.
    StalledBus,
    /// Ready to work but waiting on FIFO space.
    StalledFifo,
    /// Nothing to do.
    Idle,
}

impl Activity {
    /// Number of activities (array dimension).
    pub const COUNT: usize = 8;

    /// Every activity, in rendering order.
    pub const ALL: [Activity; Activity::COUNT] = [
        Activity::Busy,
        Activity::Transfer,
        Activity::Arbitration,
        Activity::Sar,
        Activity::Driver,
        Activity::StalledBus,
        Activity::StalledFifo,
        Activity::Idle,
    ];

    /// Stable name.
    pub const fn name(self) -> &'static str {
        match self {
            Activity::Busy => "busy",
            Activity::Transfer => "transfer",
            Activity::Arbitration => "arbitration",
            Activity::Sar => "sar",
            Activity::Driver => "driver",
            Activity::StalledBus => "stalled.bus",
            Activity::StalledFifo => "stalled.fifo",
            Activity::Idle => "idle",
        }
    }

    /// Whether this activity counts as the component actively consuming
    /// its resource (the numerator of utilization). Stalls and idle time
    /// are accounted but do not saturate anything.
    pub const fn is_active(self) -> bool {
        matches!(
            self,
            Activity::Busy
                | Activity::Transfer
                | Activity::Arbitration
                | Activity::Sar
                | Activity::Driver
        )
    }
}

/// The sink trait the simulations charge intervals into.
///
/// Mirrors the [`Tracer`](crate::Tracer) contract: every call site in a
/// simulation is gated on `enabled()`, so a disabled profiler costs one
/// inlined branch and nothing else.
pub trait Profiler {
    /// Whether charges will be kept. Instrumentation points test this
    /// before doing any work to build a charge.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    /// Charge `dur` of `activity` on `component`, starting at `from`.
    fn charge(&mut self, component: Component, activity: Activity, from: Time, dur: Duration);

    /// Sample an occupancy gauge (FIFO depth, pool buffers in use,
    /// switch backlog) for `component` at time `now`.
    fn gauge(&mut self, component: Component, now: Time, value: u64);
}

/// The do-nothing profiler: `enabled()` is `false` and the compiler
/// removes every gated charge.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullProfiler;

impl Profiler for NullProfiler {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn charge(&mut self, _: Component, _: Activity, _: Time, _: Duration) {}

    #[inline(always)]
    fn gauge(&mut self, _: Component, _: Time, _: u64) {}
}

/// Occupancy gauge statistics captured into a [`Profile`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GaugeStats {
    /// Highest value ever sampled.
    pub peak: u64,
    /// Time-weighted mean over the run.
    pub mean: f64,
}

/// Default utilization window: fine enough to see per-packet structure
/// at OC-12 (a 9180-byte packet occupies the link for ~136 µs), coarse
/// enough that a millisecond run stays a few dozen buckets.
pub const DEFAULT_WINDOW: Duration = Duration::from_us(50);

/// The recording profiler: exact `(component, activity)` totals, one
/// utilization [`TimeSeries`] and one [`OccupancyTracker`] gauge per
/// component.
#[derive(Clone, Debug)]
pub struct CycleProfiler {
    totals: [[Duration; Activity::COUNT]; Component::COUNT],
    gauges: [OccupancyTracker; Component::COUNT],
    series: Vec<TimeSeries>, // indexed by component
}

impl Default for CycleProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl CycleProfiler {
    /// A profiler with the default utilization window.
    pub fn new() -> Self {
        Self::with_window(DEFAULT_WINDOW)
    }

    /// A profiler with an explicit utilization window.
    pub fn with_window(window: Duration) -> Self {
        CycleProfiler {
            totals: [[Duration::ZERO; Activity::COUNT]; Component::COUNT],
            gauges: std::array::from_fn(|_| OccupancyTracker::new()),
            series: (0..Component::COUNT)
                .map(|_| TimeSeries::new(window))
                .collect(),
        }
    }

    /// Snapshot the accumulated accounting as of `end` (normally the
    /// simulation's `finished_at`). `end` is the denominator of every
    /// utilization in the snapshot.
    pub fn snapshot(&self, end: Time) -> Profile {
        Profile {
            end,
            totals: self.totals,
            gauges: std::array::from_fn(|i| GaugeStats {
                peak: self.gauges[i].peak(),
                mean: self.gauges[i].mean(end),
            }),
            series: self.series.clone(),
        }
    }
}

impl Profiler for CycleProfiler {
    fn charge(&mut self, component: Component, activity: Activity, from: Time, dur: Duration) {
        self.totals[component as usize][activity as usize] += dur;
        if activity.is_active() {
            self.series[component as usize].charge(from, dur);
        }
    }

    fn gauge(&mut self, component: Component, now: Time, value: u64) {
        self.gauges[component as usize].set(now, value);
    }
}

/// An immutable snapshot of a run's cycle accounting.
#[derive(Clone, Debug)]
pub struct Profile {
    end: Time,
    totals: [[Duration; Activity::COUNT]; Component::COUNT],
    gauges: [GaugeStats; Component::COUNT],
    series: Vec<TimeSeries>,
}

impl Profile {
    /// The snapshot instant — the utilization denominator.
    pub fn end(&self) -> Time {
        self.end
    }

    /// The run span (simulation start to `end`).
    pub fn span(&self) -> Duration {
        self.end.saturating_since(Time::ZERO)
    }

    /// Total time charged to `(component, activity)`.
    pub fn total(&self, component: Component, activity: Activity) -> Duration {
        self.totals[component as usize][activity as usize]
    }

    /// Total *active* time on a component (the sum over activities with
    /// [`Activity::is_active`]).
    pub fn active_time(&self, component: Component) -> Duration {
        Activity::ALL
            .iter()
            .filter(|a| a.is_active())
            .map(|&a| self.total(component, a))
            .sum()
    }

    /// Mean utilization of a component over the run: active time over
    /// span. Zero for an empty span.
    pub fn utilization(&self, component: Component) -> f64 {
        let span = self.span().as_s_f64();
        if span <= 0.0 {
            0.0
        } else {
            self.active_time(component).as_s_f64() / span
        }
    }

    /// Occupancy gauge statistics for a component.
    pub fn gauge(&self, component: Component) -> GaugeStats {
        self.gauges[component as usize]
    }

    /// The windowed utilization series for a component.
    pub fn series(&self, component: Component) -> &TimeSeries {
        &self.series[component as usize]
    }

    /// The busiest window of a component: `(window index, utilization)`.
    pub fn high_watermark(&self, component: Component) -> Option<(usize, f64)> {
        self.series(component).high_watermark()
    }

    /// Components that were charged any time or gauged above zero, in
    /// canonical order.
    pub fn charged_components(&self) -> impl Iterator<Item = Component> + '_ {
        Component::ALL.into_iter().filter(|&c| {
            self.gauge(c).peak > 0
                || Activity::ALL
                    .iter()
                    .any(|&a| self.total(c, a) > Duration::ZERO)
        })
    }

    /// Folded-stacks rendering (flamegraph collapse format): one line
    /// per charged `(component, activity)` pair —
    /// `component;activity <nanoseconds>` — in canonical order.
    pub fn folded_stacks(&self) -> String {
        let mut out = String::new();
        for c in Component::ALL {
            for a in Activity::ALL {
                let t = self.total(c, a);
                if t > Duration::ZERO {
                    out.push_str(c.name());
                    out.push(';');
                    out.push_str(a.name());
                    out.push(' ');
                    out.push_str(&(t.as_ps() / 1_000).to_string());
                    out.push('\n');
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_all_is_complete_and_named_uniquely() {
        assert_eq!(Component::ALL.len(), Component::COUNT);
        let mut names: Vec<&str> = Component::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Component::COUNT, "duplicate component name");
        for (i, c) in Component::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "ALL order must match discriminants");
        }
    }

    #[test]
    fn activity_all_is_complete_and_active_set_is_right() {
        assert_eq!(Activity::ALL.len(), Activity::COUNT);
        for (i, a) in Activity::ALL.iter().enumerate() {
            assert_eq!(*a as usize, i);
        }
        let active: Vec<Activity> = Activity::ALL
            .into_iter()
            .filter(|a| a.is_active())
            .collect();
        assert_eq!(
            active,
            vec![
                Activity::Busy,
                Activity::Transfer,
                Activity::Arbitration,
                Activity::Sar,
                Activity::Driver
            ]
        );
        assert!(!Activity::StalledBus.is_active());
        assert!(!Activity::StalledFifo.is_active());
        assert!(!Activity::Idle.is_active());
    }

    #[test]
    fn null_profiler_is_disabled() {
        let p = NullProfiler;
        assert!(!p.enabled());
    }

    #[test]
    fn cycle_profiler_accumulates_exact_totals() {
        let mut p = CycleProfiler::new();
        assert!(p.enabled());
        p.charge(
            Component::TxEngine,
            Activity::Busy,
            Time::ZERO,
            Duration::from_us(30),
        );
        p.charge(
            Component::TxEngine,
            Activity::Busy,
            Time::from_us(40),
            Duration::from_us(10),
        );
        p.charge(
            Component::TxEngine,
            Activity::Idle,
            Time::from_us(30),
            Duration::from_us(10),
        );
        p.charge(
            Component::TxBus,
            Activity::Transfer,
            Time::ZERO,
            Duration::from_us(25),
        );
        let prof = p.snapshot(Time::from_us(100));
        assert_eq!(
            prof.total(Component::TxEngine, Activity::Busy),
            Duration::from_us(40)
        );
        assert_eq!(prof.active_time(Component::TxEngine), Duration::from_us(40));
        assert!((prof.utilization(Component::TxEngine) - 0.4).abs() < 1e-12);
        // Idle is accounted but does not count toward utilization.
        assert_eq!(
            prof.total(Component::TxEngine, Activity::Idle),
            Duration::from_us(10)
        );
        assert!((prof.utilization(Component::TxBus) - 0.25).abs() < 1e-12);
        assert!((prof.utilization(Component::RxEngine)).abs() < 1e-12);
    }

    #[test]
    fn gauges_capture_peak_and_mean() {
        let mut p = CycleProfiler::new();
        p.gauge(Component::RxFifo, Time::ZERO, 4);
        p.gauge(Component::RxFifo, Time::from_us(1), 12);
        p.gauge(Component::RxFifo, Time::from_us(2), 0);
        let prof = p.snapshot(Time::from_us(4));
        let g = prof.gauge(Component::RxFifo);
        assert_eq!(g.peak, 12);
        // 4 for 1µs + 12 for 1µs + 0 for 2µs over 4µs = 4.0
        assert!((g.mean - 4.0).abs() < 1e-9, "mean={}", g.mean);
        assert_eq!(prof.gauge(Component::TxFifo), GaugeStats::default());
    }

    #[test]
    fn windowed_series_and_watermark() {
        let mut p = CycleProfiler::with_window(Duration::from_us(10));
        // Window 0: 4 µs busy. Window 1: saturated.
        p.charge(
            Component::RxEngine,
            Activity::Busy,
            Time::ZERO,
            Duration::from_us(4),
        );
        p.charge(
            Component::RxEngine,
            Activity::Busy,
            Time::from_us(10),
            Duration::from_us(10),
        );
        // Stalls do not enter the utilization series.
        p.charge(
            Component::RxEngine,
            Activity::StalledBus,
            Time::from_us(4),
            Duration::from_us(6),
        );
        let prof = p.snapshot(Time::from_us(20));
        let (idx, u) = prof.high_watermark(Component::RxEngine).unwrap();
        assert_eq!(idx, 1);
        assert!((u - 1.0).abs() < 1e-12);
        assert!((prof.series(Component::RxEngine).utilization(0) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn folded_stacks_renders_charged_pairs_in_order() {
        let mut p = CycleProfiler::new();
        p.charge(
            Component::RxEngine,
            Activity::Busy,
            Time::ZERO,
            Duration::from_us(3),
        );
        p.charge(
            Component::TxEngine,
            Activity::Busy,
            Time::ZERO,
            Duration::from_ns(1500),
        );
        p.charge(
            Component::TxEngine,
            Activity::StalledFifo,
            Time::from_us(2),
            Duration::from_us(1),
        );
        let prof = p.snapshot(Time::from_us(10));
        let folded = prof.folded_stacks();
        // Canonical order: tx.engine lines before rx.engine.
        assert_eq!(
            folded,
            "tx.engine;busy 1500\ntx.engine;stalled.fifo 1000\nrx.engine;busy 3000\n"
        );
        let charged: Vec<Component> = prof.charged_components().collect();
        assert_eq!(charged, vec![Component::TxEngine, Component::RxEngine]);
    }

    #[test]
    fn empty_profile_renders_empty() {
        let prof = CycleProfiler::new().snapshot(Time::ZERO);
        assert_eq!(prof.folded_stacks(), "");
        assert_eq!(prof.charged_components().count(), 0);
        assert_eq!(prof.utilization(Component::TxEngine), 0.0);
    }
}
