//! Trace a packet's life end to end and render the latency waterfall.
//!
//! ```text
//! cargo run -p hni-bench --example trace_waterfall [pkt_octets]
//! ```
//!
//! Runs the unloaded end-to-end composition (transmit pipeline →
//! 5 µs of fibre → receive pipeline) with a recording tracer, then
//! reduces the event stream three ways:
//!
//! 1. the per-stage latency waterfall (the R-F3 breakdown, but measured
//!    from trace spans instead of computed in closed form),
//! 2. the metrics registry derived from the same stream,
//! 3. the first few events as JSONL, the interchange format
//!    `report --trace <id>` emits.

use hni_bench::experiments::rf3_latency;
use hni_telemetry::{jsonl, MetricsRegistry, Time, Waterfall};

fn main() {
    let len: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("pkt_octets must be an integer"))
        .unwrap_or(rf3_latency::TRACE_LEN);

    let events = rf3_latency::trace_run(len);
    println!(
        "traced one {len}-octet packet end to end: {} events\n",
        events.len()
    );

    let w = Waterfall::from_events(&events, 0).expect("packet 0 fully traced");
    println!("{}", w.render());
    println!(
        "stage sum {:.2} µs = total {:.2} µs (telescoping edges)\n",
        w.stage_sum().as_us_f64(),
        w.total.as_us_f64()
    );

    let end = events.last().map(|e| e.time).unwrap_or(Time::ZERO);
    println!("metrics derived from the same trace stream:");
    print!("{}", MetricsRegistry::from_trace(&events, end).dump(end));

    println!("\nfirst 5 events as JSONL (`report --trace r-f3` emits the full stream):");
    for ev in events.iter().take(5) {
        let mut line = String::new();
        jsonl::write_event(&mut line, ev);
        println!("{line}");
    }
}
