//! Throughput sweep: the R-F1 experiment as a runnable example.
//!
//! ```text
//! cargo run -p hni-bench --example throughput_sweep --release
//! ```
//!
//! Sweeps packet size for each hardware/software partition at OC-3 and
//! OC-12, printing simulated goodput next to the analytic bound and the
//! predicted bottleneck — the figure at the heart of the architecture's
//! case.

use hni_analysis::throughput::predict_tx;
use hni_atm::VcId;
use hni_core::engine::HwPartition;
use hni_core::txsim::{greedy_workload, run_tx, TxConfig};
use hni_sonet::LineRate;

fn main() {
    let sizes = [64usize, 256, 1024, 4096, 9180, 32768, 65000];
    for rate in [LineRate::Oc3, LineRate::Oc12] {
        println!(
            "\n=== {rate:?}: line {:.2} Mb/s, payload {:.2} Mb/s, cell slot {} ===",
            rate.line_bps() / 1e6,
            rate.payload_bps() / 1e6,
            rate.cell_slot_time(),
        );
        for partition in [
            HwPartition::all_software(),
            HwPartition::paper_split(),
            HwPartition::full_hardware(),
        ] {
            println!("\n  partition: {}", partition.name);
            println!(
                "  {:>10}  {:>14}  {:>14}  {:>10}  {:>8}  {:>8}",
                "pkt octets", "sim goodput", "analytic", "bottleneck", "eng util", "bus util"
            );
            for &len in &sizes {
                let mut cfg = TxConfig::paper(rate);
                cfg.partition = partition;
                let r = run_tx(&cfg, &greedy_workload(20, len, VcId::new(0, 32)));
                let p = predict_tx(len, &partition, cfg.mips, &cfg.bus, rate, cfg.aal);
                println!(
                    "  {:>10}  {:>11.1} Mb/s  {:>11.1} Mb/s  {:>10}  {:>7.1}%  {:>7.1}%",
                    len,
                    r.goodput_bps / 1e6,
                    p.achievable_bps / 1e6,
                    p.bottleneck,
                    r.engine_util * 100.0,
                    r.bus_util * 100.0,
                );
            }
        }
    }
    println!(
        "\nReading: all-software plateaus at the engine bound regardless of rate;\n\
         the paper split rides the link to saturation once per-packet costs amortize."
    );
}
