//! Closed-loop congestion avoidance from EFCI marks — the mechanism
//! that later grew into ABR.
//!
//! ```text
//! cargo run -p hni-bench --example congestion_feedback --release
//! ```
//!
//! An adaptive source shares a switch output with a fixed 40%-load
//! background stream. The switch sets the EFCI (congestion experienced)
//! bit on cells departing a deep queue; the receiver reports the marked
//! fraction back each round trip, and the source applies AIMD: multiply
//! its rate down when marks exceed a threshold, add a small increment
//! otherwise. Compare against a fixed greedy source that just fills the
//! queue and loses cells.

use hni_atm::{Cell, HeaderRepr, Pti, VcId, PAYLOAD_SIZE};
use hni_sim::Time;
use hni_switch::{RouteEntry, Switch, SwitchConfig};

const SLOTS: usize = 120_000;
const RTT_SLOTS: usize = 600; // feedback delay: marks observed one "RTT" later
const BACKGROUND_LOAD: f64 = 0.40;

struct RoundResult {
    carried: u64,
    dropped: u64,
    marked_fraction_history: Vec<f64>,
    final_rate: f64,
    peak_queue: u64,
}

/// Run the shared queue for `SLOTS` slots with the adaptive source
/// enabled (`adaptive`) or pinned at rate 0.9 (greedy).
fn run(adaptive: bool) -> RoundResult {
    let mut sw = Switch::new(SwitchConfig {
        ports: 2,
        output_queue_cells: 64,
        clp_threshold: 64, // no space priority: everyone equal
        efci_threshold: 24,
    });
    let src_vc = VcId::new(0, 500);
    let bg_vc = VcId::new(0, 501);
    sw.add_route(
        0,
        src_vc,
        RouteEntry {
            out_port: 1,
            out_vc: src_vc,
        },
    );
    sw.add_route(
        0,
        bg_vc,
        RouteEntry {
            out_port: 1,
            out_vc: bg_vc,
        },
    );

    let payload = [0u8; PAYLOAD_SIZE];
    let mut rate: f64 = if adaptive { 0.10 } else { 0.90 };
    let mut credit = 0.0f64;
    let mut bg_credit = 0.0f64;

    // Per-round mark accounting, applied after an RTT's delay.
    let mut marked_in_round = 0u64;
    let mut seen_in_round = 0u64;
    let mut history = Vec::new();
    let mut offered_src = 0u64;

    for slot in 0..SLOTS {
        // Background stream: fixed load, smooth.
        bg_credit += BACKGROUND_LOAD;
        if bg_credit >= 1.0 {
            bg_credit -= 1.0;
            sw.offer(
                0,
                &Cell::new(&HeaderRepr::data(bg_vc, false), &payload).unwrap(),
                Time::ZERO,
            );
        }
        // Adaptive source.
        credit += rate;
        if credit >= 1.0 {
            credit -= 1.0;
            offered_src += 1;
            sw.offer(
                0,
                &Cell::new(&HeaderRepr::data(src_vc, false), &payload).unwrap(),
                Time::ZERO,
            );
        }
        // Drain one slot; the "receiver" observes EFCI on the source's VC.
        if let Some(cell) = sw.pull(1, Time::ZERO) {
            let h = cell.header().unwrap();
            if h.vc() == src_vc {
                seen_in_round += 1;
                if matches!(
                    h.pti,
                    Pti::UserData {
                        congestion: true,
                        ..
                    }
                ) {
                    marked_in_round += 1;
                }
            }
        }
        // Every RTT, feedback reaches the source.
        if adaptive && slot % RTT_SLOTS == RTT_SLOTS - 1 && seen_in_round > 0 {
            let frac = marked_in_round as f64 / seen_in_round as f64;
            history.push(frac);
            if frac > 0.1 {
                rate = (rate * 0.85).max(0.01); // multiplicative decrease
            } else {
                rate = (rate + 0.01).min(1.0); // additive increase
            }
            marked_in_round = 0;
            seen_in_round = 0;
        }
    }
    let st = sw.port_stats(1);
    let _ = offered_src;
    RoundResult {
        carried: st.carried,
        dropped: st.dropped_full + st.dropped_clp,
        marked_fraction_history: history,
        final_rate: rate,
        peak_queue: sw.peak_queue(1),
    }
}

fn main() {
    println!("shared 64-cell output queue, EFCI threshold 24, background load 40%\n");
    let fixed = run(false);
    println!("fixed source at rate 0.90 (total offered load 1.30):");
    println!(
        "  carried {} cells, DROPPED {} cells, peak queue {}",
        fixed.carried, fixed.dropped, fixed.peak_queue
    );
    let adaptive = run(true);
    println!("\nAIMD source driven by EFCI marks (RTT = 600 slots):");
    println!(
        "  carried {} cells, dropped {} cells, peak queue {}",
        adaptive.carried, adaptive.dropped, adaptive.peak_queue
    );
    println!(
        "  converged rate ≈ {:.2} (available capacity = {:.2})",
        adaptive.final_rate,
        1.0 - BACKGROUND_LOAD
    );
    let tail: Vec<String> = adaptive
        .marked_fraction_history
        .iter()
        .rev()
        .take(8)
        .rev()
        .map(|f| format!("{:.0}%", f * 100.0))
        .collect();
    println!("  EFCI-marked fraction, last rounds: {}", tail.join(" "));
    println!(
        "\nReading: the fixed source overruns the queue and loses {} cells;\n\
         the adaptive source oscillates around the spare capacity (~0.6),\n\
         keeps the queue under the EFCI threshold most of the time, and\n\
         loses {} — congestion *avoidance* out of one header bit.",
        fixed.dropped, adaptive.dropped
    );
}
