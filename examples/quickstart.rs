//! Quickstart: two host interfaces back to back over a SONET OC-3 link.
//!
//! ```text
//! cargo run -p hni-bench --example quickstart
//! ```
//!
//! Opens a virtual connection, pushes a handful of packets through the
//! complete byte-exact path — AAL5 segmentation, ATM cells, SONET
//! framing with scrambling and parity, frame alignment, cell
//! delineation, reassembly — and prints what each layer saw.

use hni_atm::VcId;
use hni_core::{Nic, NicConfig, NicEvent};
use hni_sim::Time;
use hni_sonet::LineRate;

fn main() {
    let cfg = NicConfig::paper(LineRate::Oc3);
    let mut alice = Nic::new(cfg.clone());
    let mut bob = Nic::new(cfg);

    let vc = VcId::new(0, 42);
    alice.open_vc(vc).expect("CAM has room");
    bob.open_vc(vc).expect("CAM has room");

    // Let bob's receiver acquire frame alignment and cell delineation
    // from alice's idle signal, as a real receiver would before traffic.
    for _ in 0..12 {
        let frame = alice.frame_tick();
        bob.receive_line_octets(&frame, Time::ZERO);
    }
    println!(
        "receiver synchronized: frame alignment = {:?}, cell delineation = {:?}",
        bob.tc_receiver().aligner().state(),
        bob.tc_receiver().delineator().state(),
    );

    // Send a few packets of different sizes.
    let payloads: Vec<Vec<u8>> = vec![
        b"hello, aurora testbed".to_vec(),
        vec![0xAB; 4096],
        (0..9180).map(|i| (i % 251) as u8).collect(),
    ];
    for p in &payloads {
        alice
            .send(vc, p.clone(), Time::ZERO)
            .expect("vc open, size ok");
    }
    println!(
        "alice queued {} SDUs as {} cells",
        alice.sdus_sent(),
        alice.cells_sent()
    );

    // Clock 125 µs frames across the link until everything arrives.
    let mut received = Vec::new();
    let mut frames = 0;
    while received.len() < payloads.len() && frames < 100 {
        let frame = alice.frame_tick();
        frames += 1;
        bob.receive_line_octets(&frame, Time::ZERO);
        while let Some(ev) = bob.poll() {
            match ev {
                NicEvent::PacketReceived { vc, data, .. } => {
                    println!("bob received {} octets on VC {vc}", data.len());
                    received.push(data);
                }
                other => println!("unexpected event: {other:?}"),
            }
        }
    }

    assert_eq!(received, payloads, "every byte must survive the path");
    println!(
        "\n{} SONET frames ({} µs of line time) carried {} data cells and {} idle cells",
        frames,
        frames * 125,
        bob.tc_receiver().data_cells(),
        alice.tc_transmitter().idle_cells(),
    );
    println!(
        "B1/B2/B3 parity errors seen: {}/{}/{} (clean fibre)",
        bob.tc_receiver().parser().total_b1_errors(),
        bob.tc_receiver().parser().total_b2_errors(),
        bob.tc_receiver().parser().total_b3_errors(),
    );
    println!("quickstart OK — all {} payloads intact", received.len());
}
