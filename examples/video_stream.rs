//! Video over a paced VC: the workload the intro of every host-interface
//! paper of the era motivates — a constant-bit-rate stream that must not
//! be jittered by bulk transfers sharing the interface.
//!
//! ```text
//! cargo run -p hni-bench --example video_stream --release
//! ```
//!
//! A 15 Mb/s "video" stream (480-octet frames every 250 µs) shares the
//! transmit pipeline with three greedy 64 kB bulk transfers, with and
//! without per-VC GCRA pacing. Compare the cell-level jitter.

use hni_atm::VcId;
use hni_core::txsim::{run_tx, TxConfig, TxPacket};
use hni_sim::{Duration, Time};
use hni_sonet::LineRate;

fn workload(video: VcId) -> Vec<TxPacket> {
    let mut pkts = Vec::new();
    for i in 0..60u64 {
        pkts.push(TxPacket {
            vc: video,
            len: 480,
            arrival: Time::ZERO + Duration::from_us(250) * i,
            pcr: Some(60_000.0), // pace to 60k cells/s
        });
    }
    for v in 0..3u16 {
        for _ in 0..2 {
            pkts.push(TxPacket {
                vc: VcId::new(0, 300 + v),
                len: 65_000,
                arrival: Time::ZERO,
                pcr: None,
            });
        }
    }
    pkts
}

fn main() {
    let video = VcId::new(0, 200);
    println!("15.4 Mb/s CBR stream vs three greedy bulk VCs at OC-12\n");
    for pacing in [false, true] {
        let mut cfg = TxConfig::paper(LineRate::Oc12);
        cfg.pacing = pacing;
        let r = run_tx(&cfg, &workload(video));
        let jitter = &r.interdeparture_us[&video];
        println!(
            "pacing {:>3}: video cell gaps mean {:7.2} µs, sd {:6.2} µs, max {:7.2} µs  \
             (packets sent: {}, link util {:.1}%)",
            if pacing { "on" } else { "off" },
            jitter.mean(),
            jitter.std_dev(),
            jitter.max(),
            r.packets_sent,
            r.link_util * 100.0,
        );
    }
    println!(
        "\nReading: unpaced, the video VC's cells bunch behind bulk cells and then\n\
         burst out back-to-back (small mean, huge max). Paced, each video cell\n\
         departs near its GCRA-conforming time: the jitter collapses, and the\n\
         bulk VCs still fill every slot the video VC does not claim."
    );
}
