//! Fault injection: what each protection layer catches.
//!
//! ```text
//! cargo run -p hni-bench --example fault_injection --release
//! ```
//!
//! Pushes traffic through the byte-exact path while injecting (a) whole
//! cell loss and (b) line bit errors, then prints what the HEC machine,
//! the delineator, the SONET parity bytes and the AAL reassembler each
//! saw — the full error-detection stack doing its job.

use hni_atm::VcId;
use hni_core::{Nic, NicConfig, NicEvent};
use hni_faults::scenarios;
use hni_sim::{link::apply_bit_errors, FaultPlan, Link, LinkDelivery, Rng, Time};
use hni_sonet::LineRate;

fn main() {
    cell_loss_run(
        "scenario A: 0.5% i.i.d. cell loss (switch congestion)",
        FaultPlan::loss(0.005),
    );
    bit_error_run();
    cell_loss_run(
        "scenario C: bursty cell loss (Gilbert\u{2013}Elliott, ~0.5% long-run)",
        scenarios::bursty_congestion(0.005, 12.0),
    );
}

/// A congested switch drops cells according to `plan` — i.i.d. or
/// bursty; the downstream protection stack neither knows nor cares.
fn cell_loss_run(title: &str, plan: FaultPlan) {
    println!("=== {title} ===");
    let cfg = NicConfig::paper(LineRate::Oc3);
    let mut a = Nic::new(cfg.clone());
    let mut b = Nic::new(cfg);
    let vc = VcId::new(0, 50);
    a.open_vc(vc).unwrap();
    b.open_vc(vc).unwrap();
    for _ in 0..12 {
        let f = a.frame_tick();
        b.receive_line_octets(&f, Time::ZERO);
    }

    let mut link = Link::new(1e9, hni_sim::Duration::ZERO, plan, Rng::new(7));
    let n_frames = 200;
    let len = 4096;
    let mut t = Time::ZERO;
    for i in 0..n_frames {
        let payload: Vec<u8> = (0..len).map(|j| ((i + j) % 256) as u8).collect();
        for cell in hni_aal::aal5::segment(vc, &payload, 0) {
            if !matches!(link.send(t, 424), LinkDelivery::Lost) {
                a.inject_cell(&cell);
            }
            t = link.next_free();
        }
    }
    let mut ok = 0;
    let mut errors = Vec::new();
    for _ in 0..(n_frames * 87 * 53 / 2340 + 4) {
        let f = a.frame_tick();
        b.receive_line_octets(&f, Time::ZERO);
        while let Some(ev) = b.poll() {
            match ev {
                NicEvent::PacketReceived { .. } => ok += 1,
                NicEvent::ReceiveError(f) => errors.push(f.error),
                _ => {}
            }
        }
    }
    println!("  cells lost on the link : {}", link.lost_units());
    println!("  frames delivered intact: {ok}/{n_frames}");
    let mut counts = std::collections::BTreeMap::new();
    for e in &errors {
        *counts.entry(format!("{e}")).or_insert(0u32) += 1;
    }
    println!(
        "  reassembly failures    : {errors_len}",
        errors_len = errors.len()
    );
    for (e, n) in counts {
        println!("    {n:>4} × {e}");
    }
    println!();
}

/// Scenario B: a noisy line at BER 1e-5.
fn bit_error_run() {
    println!("=== scenario B: line BER 1e-5 (dirty fibre) ===");
    let cfg = NicConfig::paper(LineRate::Oc3);
    let mut a = Nic::new(cfg.clone());
    let mut b = Nic::new(cfg);
    let vc = VcId::new(0, 60);
    a.open_vc(vc).unwrap();
    b.open_vc(vc).unwrap();

    let mut rng = Rng::new(99);
    let ber = 1e-5;
    let n_frames = 150;
    let len = 9180;
    let mut ok = 0;
    let mut failures = 0;
    let mut frames_sent = 0u32;
    for i in 0..n_frames {
        let payload: Vec<u8> = (0..len).map(|j| ((i * 3 + j) % 256) as u8).collect();
        a.send(vc, payload, Time::ZERO).unwrap();
        // Drain enough SONET frames for this packet, damaging each on
        // the "line".
        while a.tx_backlog_cells() > 0 {
            let mut frame = a.frame_tick();
            frames_sent += 1;
            // i.i.d. bit errors at the given BER.
            let bits = frame.len() as u64 * 8;
            let mut pos = 0u64;
            let mut flips = Vec::new();
            loop {
                let gap = rng.geometric(ber);
                pos += gap;
                if pos > bits {
                    break;
                }
                flips.push(pos - 1);
            }
            apply_bit_errors(&mut frame, &flips);
            b.receive_line_octets(&frame, Time::ZERO);
        }
        while let Some(ev) = b.poll() {
            match ev {
                NicEvent::PacketReceived { .. } => ok += 1,
                NicEvent::ReceiveError(_) => failures += 1,
                _ => {}
            }
        }
    }
    let rx = b.tc_receiver();
    println!("  SONET frames sent       : {frames_sent}");
    println!(
        "  B1/B2/B3 parity errors  : {}/{}/{}",
        rx.parser().total_b1_errors(),
        rx.parser().total_b2_errors(),
        rx.parser().total_b3_errors()
    );
    println!(
        "  HEC: corrected {} headers, discarded {} cells",
        rx.delineator().hec_receiver().corrected(),
        rx.delineator().hec_receiver().discarded()
    );
    println!("  delineation losses      : {}", rx.delineator().losses());
    println!("  frames intact           : {ok}/{n_frames} ({failures} reassembly failures)");
    println!(
        "\nReading: parity counts the damage, the HEC machine repairs single-bit\n\
         header hits and sheds the rest, and whatever reaches reassembly with\n\
         damaged payload dies on the AAL5 CRC-32 — nothing corrupt is delivered."
    );
}
