//! Circuit emulation: an AAL1 constant-bit-rate stream crossing a
//! congested ATM switch.
//!
//! ```text
//! cargo run -p hni-bench --example circuit_emulation --release
//! ```
//!
//! A "video feed" is segmented with AAL1 (47 stream octets per cell, a
//! sequence count protected by CRC-3 + parity) and switched through an
//! output port it shares with a bursty bulk source. The switch's
//! CLP-aware discard drops the bulk (CLP=1) traffic first; whatever CBR
//! cells are lost anyway are *detected* by the AAL1 sequence count and
//! replaced with fill so the stream never loses its timing skeleton —
//! recovery by concealment, not retransmission, which is the whole CBR
//! philosophy.

use hni_aal::aal1::{Aal1Receiver, Aal1Segmenter, PAYLOAD_PER_CELL};
use hni_atm::{Cell, HeaderRepr, VcId, PAYLOAD_SIZE};
use hni_sim::{Rng, Time};
use hni_switch::{RouteEntry, Switch, SwitchConfig};

fn main() {
    let video_vc = VcId::new(0, 400);
    let bulk_vc = VcId::new(0, 401);

    let mut sw = Switch::new(SwitchConfig {
        ports: 2,
        output_queue_cells: 16,
        clp_threshold: 10,
        efci_threshold: 8,
    });
    sw.add_route(
        0,
        video_vc,
        RouteEntry {
            out_port: 1,
            out_vc: video_vc,
        },
    );
    sw.add_route(
        0,
        bulk_vc,
        RouteEntry {
            out_port: 1,
            out_vc: bulk_vc,
        },
    );

    // The feed: a deterministic "signal" we can compare octet-exactly.
    let signal: Vec<u8> = (0..PAYLOAD_PER_CELL * 4000)
        .map(|i| (((i as f64) * 0.05).sin() * 100.0 + 128.0) as u8)
        .collect();
    let mut seg = Aal1Segmenter::new(video_vc);
    let mut video_cells = Vec::new();
    seg.push(&signal, &mut video_cells);

    let mut rx = Aal1Receiver::new();
    rx.fill_octet = 0x80; // mid-scale "grey"

    // Slot-synchronous run: the video emits one cell every 2nd slot
    // (half the line); the bulk source bursts hard — half its cells
    // CLP=1 (discard-eligible), half CLP=0 (it paid for priority too),
    // so the queue genuinely fills and the video takes some losses.
    let mut rng = Rng::new(77);
    let bulk_payload = [0u8; PAYLOAD_SIZE];
    let mut bulk_on = false;
    let mut now = Time::ZERO;
    let mut vi = 0;
    let mut slot_idx: u64 = 0;
    let mut bulk_offered = 0u64;
    while vi < video_cells.len() {
        // Within a slot the two inputs' cells hit the fabric in an
        // arbitrary order — don't let the loop's order shield anyone.
        let video_first = rng.chance(0.5);
        let offer_video = |sw: &mut Switch, vi: &mut usize| {
            if slot_idx.is_multiple_of(2) && *vi < video_cells.len() {
                sw.offer(0, &video_cells[*vi], now);
                *vi += 1;
            }
        };
        let offer_bulk =
            |sw: &mut Switch, rng: &mut Rng, bulk_on: &mut bool, bulk_offered: &mut u64| {
                // Bulk: on/off bursts at mean length 30, duty ~2/3 of slots.
                if *bulk_on {
                    let header = HeaderRepr {
                        clp: rng.chance(0.5),
                        ..HeaderRepr::data(bulk_vc, false)
                    };
                    let cell = Cell::new(&header, &bulk_payload).unwrap();
                    *bulk_offered += 1;
                    sw.offer(0, &cell, now);
                    if rng.chance(1.0 / 30.0) {
                        *bulk_on = false;
                    }
                } else if rng.chance(1.0 / 15.0) {
                    *bulk_on = true;
                }
            };
        if video_first {
            offer_video(&mut sw, &mut vi);
            offer_bulk(&mut sw, &mut rng, &mut bulk_on, &mut bulk_offered);
        } else {
            offer_bulk(&mut sw, &mut rng, &mut bulk_on, &mut bulk_offered);
            offer_video(&mut sw, &mut vi);
        }
        // Output drains one cell per slot; demultiplex by VC.
        if let Some(cell) = sw.pull(1, now) {
            if cell.header().unwrap().vc() == video_vc {
                rx.push(&cell);
            }
        }
        now += hni_sim::Duration::from_ns(708);
        slot_idx += 1;
    }
    // Drain the residue.
    while let Some(cell) = sw.pull(1, now) {
        if cell.header().unwrap().vc() == video_vc {
            rx.push(&cell);
        }
    }

    let stats = sw.port_stats(1);
    println!("switch output port:");
    println!(
        "  offered {} (video {} + bulk {bulk_offered} cells), carried {}, dropped full {}, dropped CLP {}",
        stats.offered,
        video_cells.len(),
        stats.carried,
        stats.dropped_full,
        stats.dropped_clp,
    );
    println!(
        "  peak queue {} cells (capacity 16, CLP threshold 10)",
        sw.peak_queue(1)
    );

    let events = rx.take_events();
    let stream = rx.take_stream();
    println!("\nAAL1 receiver:");
    println!(
        "  cells ok {}, inferred lost {}, damaged {}",
        rx.cells_ok(),
        rx.cells_lost(),
        rx.cells_damaged()
    );
    println!("  loss events: {}", events.len());
    println!(
        "  stream length {} octets (sent {}) — timing skeleton {}",
        stream.len(),
        signal.len(),
        if stream.len() == signal.len() {
            "PRESERVED"
        } else {
            "BROKEN"
        },
    );
    let intact = stream.iter().zip(&signal).filter(|(a, b)| a == b).count();
    println!(
        "  {:.2}% of octets delivered exactly; the rest concealed with fill",
        intact as f64 / signal.len() as f64 * 100.0
    );
    assert_eq!(stream.len(), signal.len());
    println!(
        "\nReading: CLP priority makes the bulk traffic absorb {} drops so the\n\
         video loses only {} cells; AAL1's sequence count converts those losses\n\
         into bounded, positioned concealment instead of stream corruption.",
        stats.dropped_clp,
        rx.cells_lost(),
    );
}
