//! The design-space walk: how much hardware does 622 Mb/s actually need?
//!
//! ```text
//! cargo run -p hni-bench --example hardware_partition --release
//! ```
//!
//! Starts from an all-software interface and moves one task at a time
//! into hardware, in descending order of per-cell cost, printing the
//! receive-path verdict after each step — an ablation of the paper's
//! partition decision.

use hni_core::engine::{HwPartition, ProtocolEngine, TaskCosts, TaskKind};
use hni_sonet::LineRate;

/// Build a partition with exactly `hw` tasks in hardware.
fn partition_with(hw: &[TaskKind]) -> HwPartition {
    // HwPartition's public constructors are the three presets; compose
    // via paper_split as a template when it matches, otherwise rebuild
    // from scratch through the public API.
    let mut p = HwPartition::all_software();
    for &t in hw {
        p = p.plus_hardware(t);
    }
    p
}

fn main() {
    let mips = 25.0;
    let rate = LineRate::Oc12;
    let slot_rate = rate.cell_slots_per_second();
    let costs = TaskCosts::default();

    // Receive-side per-cell tasks, most expensive first.
    let mut rx_cell_tasks: Vec<TaskKind> = TaskKind::ALL
        .into_iter()
        .filter(|t| t.is_per_cell() && !t.is_tx())
        .collect();
    rx_cell_tasks.sort_by_key(|&t| std::cmp::Reverse(costs.instructions(t)));

    println!(
        "OC-12 payload slot rate: {:.0} cells/s — the receive engine must match it.\n",
        slot_rate
    );
    println!(
        "{:<44}  {:>12}  {:>14}  {:>8}",
        "hardware assists", "instr/cell", "max cells/s", "keeps up"
    );

    let mut hw: Vec<TaskKind> = Vec::new();
    loop {
        let p = partition_with(&hw);
        let engine = ProtocolEngine::new(mips, &p);
        let instr = engine.rx_per_cell_instructions();
        let max = if instr == 0 {
            f64::INFINITY
        } else {
            mips * 1e6 / instr as f64
        };
        let label = if hw.is_empty() {
            "(none — all software)".to_string()
        } else {
            hw.iter().map(|t| t.label()).collect::<Vec<_>>().join(" + ")
        };
        println!(
            "{label:<44}  {instr:>12}  {max:>14.0}  {:>8}",
            if max >= slot_rate { "YES" } else { "no" }
        );
        match rx_cell_tasks.first() {
            Some(&next) => {
                hw.push(next);
                rx_cell_tasks.remove(0);
            }
            None => break,
        }
    }
    println!(
        "\nReading: moving the CRC into hardware does most of the work; adding the\n\
         VCI CAM closes the gap. List management alone (15 instr) fits the 17.7-\n\
         instruction OC-12 budget — exactly the paper's partition."
    );
}
