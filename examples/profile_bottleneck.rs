//! Cycle-profile a pipeline run and attribute its bottleneck.
//!
//! ```text
//! cargo run -p hni-bench --example profile_bottleneck [pkt_octets]
//! ```
//!
//! Runs the canonical transmit workload (paper split, OC-12, greedy
//! backlog) under a live `CycleProfiler`, then reduces the charges
//! three ways:
//!
//! 1. the utilization-ranked bottleneck attribution with implied
//!    throughput ceilings (what `report bottleneck r-f1` prints),
//! 2. the folded activity stacks (`report profile r-f1` — flamegraph
//!    food: `component;activity <ns>` per line),
//! 3. the Prometheus text exposition (`report prom r-f1`).

use hni_atm::VcId;
use hni_core::txsim::{greedy_workload, run_tx_profiled, TxConfig};
use hni_sonet::LineRate;
use hni_telemetry::{attribute, expfmt, CycleProfiler};

fn main() {
    let len: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("pkt_octets must be an integer"))
        .unwrap_or(9180);

    let cfg = TxConfig::paper(LineRate::Oc12);
    let mut prof = CycleProfiler::new();
    let (report, _) = run_tx_profiled(&cfg, &greedy_workload(20, len, VcId::new(0, 32)), &mut prof);
    let profile = prof.snapshot(report.finished_at);

    println!(
        "profiled 20 × {len}-octet packets at OC-12 (paper split): \
         {:.1} Mb/s goodput over {:.1} µs\n",
        report.goodput_bps / 1e6,
        profile.span().as_us_f64()
    );

    let a = attribute(&profile, report.goodput_bps);
    println!("{}", a.render());

    println!("folded activity stacks (flamegraph input):");
    print!("{}", profile.folded_stacks());

    println!("\nPrometheus exposition (first 12 lines of `report prom r-f1`):");
    for line in expfmt::expose(&profile).lines().take(12) {
        println!("{line}");
    }
}
