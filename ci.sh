#!/usr/bin/env sh
# Local CI gate: formatting, lints-as-errors, docs-as-errors, full test
# suite, example smoke-runs, and a fresh report_output.txt.
# Run from the repository root before pushing.
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> cargo test -q"
cargo test -q

echo "==> chaos invariants under pinned seeds"
HNI_CHAOS_SEEDS="20260806,1991" cargo test -q -p hni-bench --test chaos

echo "==> smoke: examples trace_waterfall / profile_bottleneck, report r-r1"
cargo run -q -p hni-bench --example trace_waterfall --release > /dev/null
cargo run -q -p hni-bench --example profile_bottleneck --release > /dev/null
cargo run -q -p hni-bench --bin report --release -- r-r1 > /dev/null

echo "==> regenerate report_output.txt (report all)"
cargo run -q -p hni-bench --bin report --release -- all > report_output.txt

echo "CI OK"
