#!/usr/bin/env sh
# Local CI gate: formatting, lints-as-errors, docs-as-errors, full test
# suite, example smoke-runs, and a fresh report_output.txt.
# Run from the repository root before pushing.
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> cargo test -q"
cargo test -q

echo "==> chaos invariants under pinned seeds"
HNI_CHAOS_SEEDS="20260806,1991" cargo test -q -p hni-bench --test chaos

echo "==> smoke: examples trace_waterfall / profile_bottleneck, report r-r1"
cargo run -q -p hni-bench --example trace_waterfall --release > /dev/null
cargo run -q -p hni-bench --example profile_bottleneck --release > /dev/null
cargo run -q -p hni-bench --bin report --release -- r-r1 > /dev/null

echo "==> bench smoke: report perf --fast emits a valid BENCH_PERF.json"
cargo run -q -p hni-bench --bin report --release -- perf --fast bench_perf_smoke.json > /dev/null
for key in '"schema": "hni-bench-perf/1"' '"hot_loops"' '"cells_per_sec"' \
           '"speedup"' '"cores"' '"jobs"' \
           'aal5_sar_slab' 'hec_delineation' 'rx_reassembly' 'e2e_cells'; do
    grep -q "$key" bench_perf_smoke.json || {
        echo "BENCH_PERF schema: missing $key" >&2; exit 1; }
done
rm -f bench_perf_smoke.json

echo "==> parallel report == serial report (HNI_JOBS 1 vs 4, pinned seeds)"
HNI_JOBS=1 cargo run -q -p hni-bench --bin report --release -- r-t4 > par_eq_serial.txt
HNI_JOBS=4 cargo run -q -p hni-bench --bin report --release -- r-t4 > par_eq_par.txt
HNI_JOBS=1 cargo run -q -p hni-bench --bin report --release -- r-t3 >> par_eq_serial.txt
HNI_JOBS=4 cargo run -q -p hni-bench --bin report --release -- r-t3 >> par_eq_par.txt
cmp par_eq_serial.txt par_eq_par.txt || {
    echo "parallel sweep diverged from serial report" >&2; exit 1; }
rm -f par_eq_serial.txt par_eq_par.txt

echo "==> regenerate report_output.txt (report all)"
cargo run -q -p hni-bench --bin report --release -- all > report_output.txt

echo "CI OK"
