#!/usr/bin/env sh
# Local CI gate: formatting, lints-as-errors, full test suite.
# Run from the repository root before pushing.
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "CI OK"
