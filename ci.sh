#!/usr/bin/env sh
# Local CI gate: formatting, lints-as-errors, docs-as-errors, full test
# suite, example smoke-runs, and a fresh report_output.txt.
# Run from the repository root before pushing.
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> cargo test -q"
cargo test -q

echo "==> chaos invariants under pinned seeds"
HNI_CHAOS_SEEDS="20260806,1991" cargo test -q -p hni-bench --test chaos

echo "==> smoke: examples trace_waterfall / profile_bottleneck, report r-r1"
cargo run -q -p hni-bench --example trace_waterfall --release > /dev/null
cargo run -q -p hni-bench --example profile_bottleneck --release > /dev/null
cargo run -q -p hni-bench --bin report --release -- r-r1 > /dev/null

echo "==> bench smoke: report perf --fast emits a valid BENCH_PERF.json"
cargo run -q -p hni-bench --bin report --release -- perf --fast bench_perf_smoke.json > /dev/null
for key in '"schema": "hni-bench-perf/1"' '"hot_loops"' '"cells_per_sec"' \
           '"speedup"' '"cores"' '"jobs"' \
           'aal5_sar_slab' 'hec_delineation' 'rx_reassembly' 'e2e_cells' \
           'vc_lookup'; do
    grep -q "$key" bench_perf_smoke.json || {
        echo "BENCH_PERF schema: missing $key" >&2; exit 1; }
done
grep -q '"telemetry_overhead"' bench_perf_smoke.json || {
    echo "BENCH_PERF schema: missing telemetry_overhead" >&2; exit 1; }
grep -q '"reservoir_overhead"' bench_perf_smoke.json || {
    echo "BENCH_PERF schema: missing reservoir_overhead" >&2; exit 1; }
grep -q '"transport_overhead"' bench_perf_smoke.json || {
    echo "BENCH_PERF schema: missing transport_overhead" >&2; exit 1; }

echo "==> perf gate: hec_delineation sustains OC-12 line rate (1.47M cells/s)"
# The burst delineator must stay comfortably past the 622.08 Mb/s line
# cell rate (622.08e6 / 424 = 1,467,170 cells/s) even in fast mode.
hec_rate=$(tr ',' '\n' < bench_perf_smoke.json \
    | sed -n '/"name": "hec_delineation"/,/"name"/p' \
    | sed -n 's/.*"cells_per_sec": \([0-9.e+]*\).*/\1/p' | head -n 1)
[ -n "$hec_rate" ] || { echo "perf gate: no hec_delineation rate" >&2; exit 1; }
awk -v r="$hec_rate" 'BEGIN { exit !(r + 0 >= 1470000) }' || {
    echo "perf gate: hec_delineation $hec_rate cells/s < OC-12 1.47M" >&2
    exit 1; }
rm -f bench_perf_smoke.json

echo "==> expfmt lint: live expositions pass the conformance validator"
for id in r-f1 r-f2 r-f3; do
    cargo run -q -p hni-bench --bin report --release -- promlint "$id" > /dev/null || {
        echo "promlint $id failed" >&2; exit 1; }
done

echo "==> tail anatomy: blame line present, diff exits, exemplars stable across HNI_JOBS"
# The attributor must name a dominant stage on the canonical loaded run.
cargo run -q -p hni-bench --bin report --release -- tail r-f3 > tail_smoke.txt
grep -q 'p99 excess is' tail_smoke.txt || {
    echo "report tail r-f3: blame headline missing" >&2; exit 1; }
grep -q 'hni_tail_stage_share' tail_smoke.txt || {
    echo "report tail r-f3: Prometheus stage-share family missing" >&2; exit 1; }
rm -f tail_smoke.txt
# diff against itself succeeds; a stage-schema mismatch must exit 2.
cargo run -q -p hni-bench --bin report --release -- diff r-f3 r-f3 > /dev/null || {
    echo "report diff r-f3 r-f3 should succeed" >&2; exit 1; }
if cargo run -q -p hni-bench --bin report --release -- \
    diff r-f3 r-f1 > /dev/null 2>&1; then
    echo "report diff r-f3 r-f1: schema mismatch must exit non-zero" >&2; exit 1
fi
# The always-on reservoir is part of the deterministic contract: the
# exemplar report must be byte-identical across worker counts.
HNI_JOBS=1 cargo run -q -p hni-bench --bin report --release -- \
    exemplars r-f3 > exemplars_j1.txt
HNI_JOBS=4 cargo run -q -p hni-bench --bin report --release -- \
    exemplars r-f3 > exemplars_j4.txt
cmp exemplars_j1.txt exemplars_j4.txt || {
    echo "exemplar reservoir diverged across worker counts" >&2; exit 1; }
rm -f exemplars_j1.txt exemplars_j4.txt

echo "==> sentinel smoke: fresh baseline passes, doctored baseline trips"
rm -f sentinel_smoke_history.jsonl sentinel_smoke_perf.json
# Record a baseline, then re-check against it with a generous tolerance
# (fast-mode timings are noisy; the exact 20%-at-tight-tolerance logic
# is pinned by the deterministic sentinel unit tests).
cargo run -q -p hni-bench --bin report --release -- \
    perf --fast sentinel_smoke_perf.json --history sentinel_smoke_history.jsonl > /dev/null
cargo run -q -p hni-bench --bin report --release -- \
    perf --fast sentinel_smoke_perf.json --history sentinel_smoke_history.jsonl \
    --check --tolerance 3.0 > /dev/null || {
    echo "sentinel: fresh baseline should pass --check" >&2; exit 1; }
# Doctor the baseline 100x faster than reality: the check must fail 2.
sed 's/"median_ns":\([0-9]*\)\./"median_ns":0.\1/g' \
    sentinel_smoke_history.jsonl > sentinel_smoke_doctored.jsonl
if cargo run -q -p hni-bench --bin report --release -- \
    perf --fast sentinel_smoke_perf.json --history sentinel_smoke_doctored.jsonl \
    --check --tolerance 0.2 > /dev/null 2>&1; then
    echo "sentinel: doctored baseline must trip --check" >&2; exit 1
fi
rm -f sentinel_smoke_history.jsonl sentinel_smoke_doctored.jsonl sentinel_smoke_perf.json

echo "==> sampled trace identical across HNI_JOBS (1-in-1024, pinned seed)"
HNI_JOBS=1 cargo run -q -p hni-bench --bin report --release -- \
    trace r-f1 --sample 1024 --seed 7 > sampled_trace_j1.jsonl
HNI_JOBS=4 cargo run -q -p hni-bench --bin report --release -- \
    trace r-f1 --sample 1024 --seed 7 > sampled_trace_j4.jsonl
cmp sampled_trace_j1.jsonl sampled_trace_j4.jsonl || {
    echo "sampled trace diverged across worker counts" >&2; exit 1; }
rm -f sampled_trace_j1.jsonl sampled_trace_j4.jsonl

echo "==> r-w1 smoke: closed-loop golden verdict, identical across HNI_JOBS"
# The closed-loop transport report must render its PASS verdict (EPD/PPD
# dominance sharpened at the matched congestion point, satellite 10%-loss
# goodput nonzero) and be byte-identical across worker counts.
HNI_JOBS=1 cargo run -q -p hni-bench --bin report --release -- r-w1 > rw1_j1.txt
grep -q 'golden verdict: PASS' rw1_j1.txt || {
    echo "report r-w1: golden verdict is not PASS" >&2; exit 1; }
HNI_JOBS=4 cargo run -q -p hni-bench --bin report --release -- r-w1 > rw1_j4.txt
cmp rw1_j1.txt rw1_j4.txt || {
    echo "r-w1 sweep diverged across worker counts" >&2; exit 1; }
rm -f rw1_j1.txt rw1_j4.txt

echo "==> r-s1 smoke: million-VC golden verdict, identical across HNI_JOBS"
# The scale report must render its PASS verdict (flat-ish lookup cost,
# bounded memory per idle VC, goodput that does not collapse at 1M VCs)
# and be byte-identical across worker counts.
HNI_JOBS=1 cargo run -q -p hni-bench --bin report --release -- r-s1 > rs1_j1.txt
grep -q 'golden verdict: PASS' rs1_j1.txt || {
    echo "report r-s1: golden verdict is not PASS" >&2; exit 1; }
HNI_JOBS=4 cargo run -q -p hni-bench --bin report --release -- r-s1 > rs1_j4.txt
cmp rs1_j1.txt rs1_j4.txt || {
    echo "r-s1 sweep diverged across worker counts" >&2; exit 1; }
rm -f rs1_j1.txt rs1_j4.txt

echo "==> parallel report == serial report (HNI_JOBS 1 vs 4, pinned seeds)"
HNI_JOBS=1 cargo run -q -p hni-bench --bin report --release -- r-t4 > par_eq_serial.txt
HNI_JOBS=4 cargo run -q -p hni-bench --bin report --release -- r-t4 > par_eq_par.txt
HNI_JOBS=1 cargo run -q -p hni-bench --bin report --release -- r-t3 >> par_eq_serial.txt
HNI_JOBS=4 cargo run -q -p hni-bench --bin report --release -- r-t3 >> par_eq_par.txt
cmp par_eq_serial.txt par_eq_par.txt || {
    echo "parallel sweep diverged from serial report" >&2; exit 1; }
rm -f par_eq_serial.txt par_eq_par.txt

echo "==> regenerate report_output.txt (report all)"
cargo run -q -p hni-bench --bin report --release -- all > report_output.txt

echo "CI OK"
